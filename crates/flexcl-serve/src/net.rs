//! Transport loops: stdin-jsonl, blocking length-prefixed TCP, and the
//! non-blocking epoll event loop.
//!
//! The jsonl loop is the CI/pipeline surface; the blocking TCP loop
//! (one thread per connection) is the portable fallback; the epoll
//! transport ([`epoll::EpollTransport`], Linux only) is the serving hot
//! path — edge-triggered readiness, per-connection read/write state
//! machines over the same 4-byte length-prefixed framing, idle-timeout
//! reaping, and optional `SO_REUSEPORT` listener sharding.

use crate::protocol::{read_frame, write_frame};
use crate::server::Server;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// Serves newline-delimited JSON requests from `input`, writing one
/// response line per request to `output`. Returns the number of frames
/// served at EOF. Blank lines are skipped; a malformed line gets a typed
/// `malformed` response and service continues.
///
/// # Errors
///
/// Only transport I/O failures — request-level problems are answered in
/// band.
pub fn serve_jsonl(
    server: &Server,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<u64> {
    let mut frames = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(frames);
        }
        let frame = line.trim();
        if frame.is_empty() {
            continue;
        }
        writeln!(output, "{}", server.handle_frame_raw(frame))?;
        output.flush()?;
        frames += 1;
    }
}

/// Accept loop for the length-prefixed TCP transport: one handler thread
/// per connection, each serving frames sequentially until the peer
/// closes. Runs until the listener errors (or forever).
///
/// # Errors
///
/// Fatal accept errors; per-connection failures only end that
/// connection.
pub fn serve_tcp(server: Arc<Server>, listener: TcpListener) -> io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut reader = stream.try_clone().expect("clone stream");
            let mut writer = stream;
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if write_frame(&mut writer, &server.handle_frame_raw(&frame)).is_err() {
                    break;
                }
            }
        });
    }
}

/// Non-blocking epoll transport (Linux only): edge-triggered event
/// loops over raw syscalls, one per `SO_REUSEPORT` listener, serving
/// the same 4-byte length-prefixed framing as [`serve_tcp`] without a
/// thread per connection.
#[cfg(target_os = "linux")]
pub mod epoll {
    use crate::protocol::MAX_FRAME_LEN;
    use crate::server::Server;
    use std::collections::HashMap;
    use std::io;
    use std::net::{Ipv4Addr, SocketAddrV4};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// Hand-rolled syscall surface — the crate takes no `libc`
    /// dependency, so the handful of symbols the event loop needs are
    /// declared here and resolved against the C library `std` already
    /// links. Constants are the Linux generic ABI values (identical on
    /// x86_64 and aarch64 for everything used here).
    mod sys {
        use std::ffi::c_void;

        pub const AF_INET: i32 = 2;
        pub const SOCK_STREAM: i32 = 1;
        pub const SOCK_NONBLOCK: i32 = 0o4000;
        pub const SOCK_CLOEXEC: i32 = 0o2000000;
        pub const SOL_SOCKET: i32 = 1;
        pub const SO_REUSEADDR: i32 = 2;
        pub const SO_REUSEPORT: i32 = 15;

        pub const EPOLL_CLOEXEC: i32 = 0o2000000;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;
        pub const EPOLLET: u32 = 1 << 31;

        pub const EFD_CLOEXEC: i32 = 0o2000000;
        pub const EFD_NONBLOCK: i32 = 0o4000;

        pub const EINTR: i32 = 4;
        pub const EAGAIN: i32 = 11;

        /// Kernel `struct epoll_event`. x86_64 packs it to match the
        /// 32-bit layout; every other architecture uses natural
        /// alignment.
        #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
        #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        /// `struct sockaddr_in` — port and address in network byte
        /// order.
        #[repr(C)]
        #[derive(Clone, Copy)]
        pub struct SockaddrIn {
            pub sin_family: u16,
            pub sin_port: u16,
            pub sin_addr: u32,
            pub sin_zero: [u8; 8],
        }

        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
            pub fn eventfd(initval: u32, flags: i32) -> i32;
            pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            pub fn setsockopt(
                fd: i32,
                level: i32,
                optname: i32,
                optval: *const c_void,
                optlen: u32,
            ) -> i32;
            pub fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
            pub fn listen(fd: i32, backlog: i32) -> i32;
            pub fn accept4(fd: i32, addr: *mut SockaddrIn, len: *mut u32, flags: i32) -> i32;
            pub fn getsockname(fd: i32, addr: *mut SockaddrIn, len: *mut u32) -> i32;
            pub fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
            pub fn close(fd: i32) -> i32;
        }
    }

    /// Owned file descriptor: closes on drop.
    #[derive(Debug)]
    struct Fd(i32);

    impl Drop for Fd {
        fn drop(&mut self) {
            // Best effort; double-close is excluded by ownership.
            unsafe { sys::close(self.0) };
        }
    }

    fn cvt(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn errno() -> i32 {
        io::Error::last_os_error().raw_os_error().unwrap_or(0)
    }

    /// Tuning knobs for [`EpollTransport`].
    #[derive(Debug, Clone)]
    pub struct EpollOptions {
        /// Event loops, each with its own `SO_REUSEPORT` listener.
        pub listeners: usize,
        /// Idle connections (no traffic, nothing in flight) are closed
        /// after this long. A zero duration disables reaping: idle
        /// connections stay open until the peer closes or the loop stops.
        pub idle_timeout: Duration,
        /// Per-loop cap on concurrent connections; excess accepts are
        /// closed immediately.
        pub max_conns: usize,
    }

    impl Default for EpollOptions {
        fn default() -> Self {
            EpollOptions {
                listeners: 1,
                idle_timeout: Duration::from_secs(30),
                max_conns: 1024,
            }
        }
    }

    /// Completion mailbox shared between an event loop and the server
    /// workers: finished responses land in `pending` and the eventfd
    /// wakes the loop. Lives as long as the last in-flight completion
    /// closure, so a sweep finishing after shutdown writes into a
    /// still-open (merely unwatched) eventfd instead of a recycled fd.
    struct LoopShared {
        pending: Mutex<Vec<(u64, String)>>,
        wake: Fd,
    }

    impl LoopShared {
        fn new() -> io::Result<Self> {
            let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
            Ok(LoopShared { pending: Mutex::new(Vec::new()), wake: Fd(fd) })
        }

        fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // An EAGAIN here means the counter is already non-zero —
            // the loop is waking anyway.
            unsafe { sys::write(self.wake.0, one.as_ptr().cast(), one.len()) };
        }
    }

    /// Per-connection state machine. Reads accumulate into `rbuf`
    /// until a complete frame parses out; responses append to `wbuf`
    /// and drain as the socket accepts them. Responses may interleave
    /// out of request order when a connection pipelines frames — every
    /// response carries its `request_id`, so clients correlate by id,
    /// not position.
    struct Conn {
        fd: Fd,
        rbuf: Vec<u8>,
        wbuf: Vec<u8>,
        wpos: usize,
        inflight: usize,
        peer_closed: bool,
        want_write: bool,
        last: Instant,
    }

    const DATA_LISTENER: u64 = 0;
    const DATA_WAKE: u64 = 1;
    const FIRST_CONN: u64 = 2;
    const CONN_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLET;

    struct Poller(Fd);

    impl Poller {
        fn new() -> io::Result<Self> {
            Ok(Poller(Fd(cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?)))
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
            let mut ev = sys::EpollEvent { events, data };
            cvt(unsafe { sys::epoll_ctl((self.0).0, op, fd, &mut ev) }).map(|_| ())
        }

        fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                let n = unsafe {
                    sys::epoll_wait(
                        (self.0).0,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                if errno() != sys::EINTR {
                    return Err(io::Error::last_os_error());
                }
            }
        }
    }

    fn sockaddr_of(addr: SocketAddrV4) -> sys::SockaddrIn {
        sys::SockaddrIn {
            sin_family: sys::AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        }
    }

    fn local_addr_of(fd: i32) -> io::Result<SocketAddrV4> {
        let mut sa = sys::SockaddrIn {
            sin_family: 0,
            sin_port: 0,
            sin_addr: 0,
            sin_zero: [0; 8],
        };
        let mut len = std::mem::size_of::<sys::SockaddrIn>() as u32;
        cvt(unsafe { sys::getsockname(fd, &mut sa, &mut len) })?;
        Ok(SocketAddrV4::new(
            Ipv4Addr::from(u32::from_be(sa.sin_addr)),
            u16::from_be(sa.sin_port),
        ))
    }

    fn listen_socket(addr: SocketAddrV4, reuseport: bool) -> io::Result<Fd> {
        let fd = Fd(cvt(unsafe {
            sys::socket(sys::AF_INET, sys::SOCK_STREAM | sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC, 0)
        })?);
        let one: i32 = 1;
        let optlen = std::mem::size_of::<i32>() as u32;
        cvt(unsafe {
            sys::setsockopt(
                fd.0,
                sys::SOL_SOCKET,
                sys::SO_REUSEADDR,
                (&one as *const i32).cast(),
                optlen,
            )
        })?;
        if reuseport {
            cvt(unsafe {
                sys::setsockopt(
                    fd.0,
                    sys::SOL_SOCKET,
                    sys::SO_REUSEPORT,
                    (&one as *const i32).cast(),
                    optlen,
                )
            })?;
        }
        let sa = sockaddr_of(addr);
        cvt(unsafe { sys::bind(fd.0, &sa, std::mem::size_of::<sys::SockaddrIn>() as u32) })?;
        cvt(unsafe { sys::listen(fd.0, 128) })?;
        Ok(fd)
    }

    /// The epoll serving transport. [`EpollTransport::bind`] spawns
    /// one event-loop thread per listener and returns immediately;
    /// [`EpollTransport::shutdown`] stops and joins them.
    pub struct EpollTransport {
        addr: SocketAddrV4,
        stop: Arc<AtomicBool>,
        loops: Vec<(JoinHandle<io::Result<()>>, Arc<LoopShared>)>,
    }

    impl EpollTransport {
        /// Binds `addr` (an IPv4 `host:port`; port 0 picks one) and
        /// starts `opts.listeners` event loops serving `server`.
        ///
        /// # Errors
        ///
        /// Address parse and socket/epoll setup failures.
        pub fn bind(server: Arc<Server>, addr: &str, opts: EpollOptions) -> io::Result<Self> {
            let want: SocketAddrV4 = addr.parse().map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("`{addr}` is not an IPv4 host:port"),
                )
            })?;
            let n = opts.listeners.max(1);
            // The first socket resolves port 0; siblings rebind the
            // resolved address so the kernel shards accepts.
            let first = listen_socket(want, n > 1)?;
            let bound = local_addr_of(first.0)?;
            let mut sockets = vec![first];
            for _ in 1..n {
                sockets.push(listen_socket(bound, true)?);
            }

            let stop = Arc::new(AtomicBool::new(false));
            let mut loops = Vec::with_capacity(n);
            for (i, listener) in sockets.into_iter().enumerate() {
                let shared = Arc::new(LoopShared::new()?);
                let handle = std::thread::Builder::new()
                    .name(format!("epoll-{i}"))
                    .spawn({
                        let server = Arc::clone(&server);
                        let shared = Arc::clone(&shared);
                        let stop = Arc::clone(&stop);
                        let opts = opts.clone();
                        move || event_loop(&server, listener, &shared, &stop, &opts)
                    })?;
                loops.push((handle, shared));
            }
            Ok(EpollTransport { addr: bound, stop, loops })
        }

        /// The bound address (with port 0 resolved).
        pub fn local_addr(&self) -> SocketAddrV4 {
            self.addr
        }

        /// Blocks on the event-loop threads without stopping them —
        /// the serve binary's foreground mode. Returns only if a loop
        /// exits (which short of an error it never does).
        ///
        /// # Errors
        ///
        /// The first loop error, if any loop exited abnormally.
        pub fn join(self) -> io::Result<()> {
            let mut result = Ok(());
            for (handle, _) in self.loops {
                match handle.join() {
                    Ok(r) => {
                        if result.is_ok() {
                            result = r;
                        }
                    }
                    Err(_) => {
                        if result.is_ok() {
                            result = Err(io::Error::other("event loop panicked"));
                        }
                    }
                }
            }
            result
        }

        /// Stops every event loop and joins its thread.
        ///
        /// # Errors
        ///
        /// The first loop error, if any loop exited abnormally.
        pub fn shutdown(self) -> io::Result<()> {
            self.stop.store(true, Ordering::SeqCst);
            let mut result = Ok(());
            for (handle, shared) in self.loops {
                shared.wake();
                match handle.join() {
                    Ok(r) => {
                        if result.is_ok() {
                            result = r;
                        }
                    }
                    Err(_) => {
                        if result.is_ok() {
                            result = Err(io::Error::other("event loop panicked"));
                        }
                    }
                }
            }
            result
        }
    }

    fn event_loop(
        server: &Server,
        listener: Fd,
        shared: &Arc<LoopShared>,
        stop: &AtomicBool,
        opts: &EpollOptions,
    ) -> io::Result<()> {
        let poller = Poller::new()?;
        poller.ctl(
            sys::EPOLL_CTL_ADD,
            listener.0,
            sys::EPOLLIN | sys::EPOLLET,
            DATA_LISTENER,
        )?;
        poller.ctl(sys::EPOLL_CTL_ADD, shared.wake.0, sys::EPOLLIN, DATA_WAKE)?;

        let mut conns: HashMap<u64, Conn> = HashMap::new();
        let mut next_id = FIRST_CONN;
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        // Wake at least 4x per idle window so reaping is timely even
        // with no traffic. A zero timeout disables reaping entirely
        // (connections then live until the peer closes or the loop stops),
        // so the tick only paces shutdown polling.
        let reap_enabled = !opts.idle_timeout.is_zero();
        let tick = if reap_enabled {
            (opts.idle_timeout.as_millis() as i32 / 4).clamp(10, 200)
        } else {
            200
        };

        while !stop.load(Ordering::SeqCst) {
            let n = poller.wait(&mut events, tick)?;
            for ev in &events[..n] {
                let (flags, data) = (ev.events, ev.data);
                match data {
                    DATA_LISTENER => accept_all(&poller, &listener, &mut conns, &mut next_id, opts),
                    DATA_WAKE => drain_eventfd(shared.wake.0),
                    id => {
                        let keep = match conns.get_mut(&id) {
                            Some(conn) => handle_conn_event(server, shared, id, conn, flags),
                            None => continue,
                        };
                        if !keep {
                            close_conn(&poller, &mut conns, id);
                        }
                    }
                }
            }

            // Deliver finished responses, then reap idle connections.
            let done = std::mem::take(&mut *shared.pending.lock().unwrap_or_else(|e| e.into_inner()));
            for (id, resp) in done {
                let keep = match conns.get_mut(&id) {
                    Some(conn) => deliver(&poller, id, conn, &resp),
                    None => continue, // connection died while the sweep ran
                };
                if !keep {
                    close_conn(&poller, &mut conns, id);
                }
            }
            if reap_enabled {
                let now = Instant::now();
                let idle: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| {
                        c.inflight == 0
                            && c.wpos >= c.wbuf.len()
                            && now.duration_since(c.last) >= opts.idle_timeout
                    })
                    .map(|(&id, _)| id)
                    .collect();
                for id in idle {
                    close_conn(&poller, &mut conns, id);
                }
            }
        }
        Ok(())
    }

    fn accept_all(
        poller: &Poller,
        listener: &Fd,
        conns: &mut HashMap<u64, Conn>,
        next_id: &mut u64,
        opts: &EpollOptions,
    ) {
        loop {
            let fd = unsafe {
                sys::accept4(
                    listener.0,
                    std::ptr::null_mut(),
                    std::ptr::null_mut(),
                    sys::SOCK_NONBLOCK | sys::SOCK_CLOEXEC,
                )
            };
            if fd < 0 {
                // EAGAIN drains the edge; anything else (ECONNABORTED,
                // EMFILE burst) is dropped and the loop stays up.
                return;
            }
            let fd = Fd(fd);
            if conns.len() >= opts.max_conns {
                continue; // drop: Fd closes on scope exit
            }
            let id = *next_id;
            *next_id += 1;
            if poller.ctl(sys::EPOLL_CTL_ADD, fd.0, CONN_INTEREST, id).is_err() {
                continue;
            }
            conns.insert(
                id,
                Conn {
                    fd,
                    rbuf: Vec::new(),
                    wbuf: Vec::new(),
                    wpos: 0,
                    inflight: 0,
                    peer_closed: false,
                    want_write: false,
                    last: Instant::now(),
                },
            );
        }
    }

    fn drain_eventfd(fd: i32) {
        let mut buf = [0u8; 8];
        unsafe { sys::read(fd, buf.as_mut_ptr().cast(), buf.len()) };
    }

    fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, id: u64) {
        if let Some(conn) = conns.remove(&id) {
            // DEL before close so a recycled fd can't alias stale
            // interest; the kernel would drop it anyway on close.
            let _ = poller.ctl(sys::EPOLL_CTL_DEL, conn.fd.0, 0, id);
        }
    }

    /// Handles readiness on a connection; returns `false` when it
    /// should be closed (peer gone, protocol violation, I/O error).
    fn handle_conn_event(
        server: &Server,
        shared: &Arc<LoopShared>,
        id: u64,
        conn: &mut Conn,
        flags: u32,
    ) -> bool {
        if flags & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            return false;
        }
        if flags & sys::EPOLLOUT != 0 && !flush(conn) {
            return false;
        }
        if flags & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 && !on_readable(server, shared, id, conn) {
            return false;
        }
        !(conn.peer_closed && conn.inflight == 0 && conn.wpos >= conn.wbuf.len())
    }

    /// Edge-triggered read: drain the socket, then parse every
    /// complete frame out of `rbuf` and dispatch it.
    fn on_readable(
        server: &Server,
        shared: &Arc<LoopShared>,
        id: u64,
        conn: &mut Conn,
    ) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = unsafe { sys::read(conn.fd.0, buf.as_mut_ptr().cast(), buf.len()) };
            if n > 0 {
                conn.rbuf.extend_from_slice(&buf[..n as usize]);
                conn.last = Instant::now();
            } else if n == 0 {
                conn.peer_closed = true;
                break;
            } else {
                match errno() {
                    sys::EAGAIN => break,
                    sys::EINTR => continue,
                    _ => return false,
                }
            }
        }
        loop {
            if conn.rbuf.len() < 4 {
                break;
            }
            let len =
                u32::from_be_bytes([conn.rbuf[0], conn.rbuf[1], conn.rbuf[2], conn.rbuf[3]])
                    as usize;
            if len > MAX_FRAME_LEN {
                return false; // framing violation: drop the connection
            }
            if conn.rbuf.len() < 4 + len {
                break;
            }
            let body = conn.rbuf[4..4 + len].to_vec();
            conn.rbuf.drain(..4 + len);
            let Ok(frame) = String::from_utf8(body) else {
                return false;
            };
            conn.inflight += 1;
            let mailbox = Arc::clone(shared);
            server.handle_frame_raw_async(
                &frame,
                Box::new(move |resp| {
                    mailbox
                        .pending
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((id, resp));
                    mailbox.wake();
                }),
            );
        }
        true
    }

    /// Frames `resp` onto the connection's write buffer and flushes
    /// what the socket will take; returns `false` to close.
    fn deliver(poller: &Poller, id: u64, conn: &mut Conn, resp: &str) -> bool {
        conn.inflight -= 1;
        conn.last = Instant::now();
        if resp.len() > MAX_FRAME_LEN {
            return false;
        }
        conn.wbuf.extend_from_slice(&(resp.len() as u32).to_be_bytes());
        conn.wbuf.extend_from_slice(resp.as_bytes());
        if !flush(conn) {
            return false;
        }
        let backlogged = conn.wpos < conn.wbuf.len();
        if backlogged != conn.want_write {
            conn.want_write = backlogged;
            let interest =
                if backlogged { CONN_INTEREST | sys::EPOLLOUT } else { CONN_INTEREST };
            if poller.ctl(sys::EPOLL_CTL_MOD, conn.fd.0, interest, id).is_err() {
                return false;
            }
        }
        !(conn.peer_closed && conn.inflight == 0 && conn.wpos >= conn.wbuf.len())
    }

    /// Writes until the socket blocks or the buffer drains; returns
    /// `false` on a write error.
    fn flush(conn: &mut Conn) -> bool {
        while conn.wpos < conn.wbuf.len() {
            let rest = &conn.wbuf[conn.wpos..];
            let n = unsafe { sys::write(conn.fd.0, rest.as_ptr().cast(), rest.len()) };
            if n > 0 {
                conn.wpos += n as usize;
            } else {
                match errno() {
                    sys::EAGAIN => break,
                    sys::EINTR => continue,
                    _ => return false,
                }
            }
        }
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn jsonl_answers_every_line_and_survives_garbage() {
        let (server, _) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("start");
        let input = "\n{\"id\":\"bad\"\n";
        let mut out = Vec::new();
        let n = serve_jsonl(&server, &mut input.as_bytes(), &mut out).expect("serve");
        assert_eq!(n, 1);
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("\"kind\":\"malformed\""), "{text}");
        let c = server.shutdown();
        assert_eq!(c.malformed, 1);
    }

    #[test]
    fn metrics_frames_report_live_counters_and_responses_carry_request_ids() {
        let (server, _) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("start");
        let input = "{\"id\":\"bad\"\n{\"metrics\":\"json\"}\n{\"metrics\":\"text\"}\n";
        let mut out = Vec::new();
        serve_jsonl(&server, &mut input.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);

        // The malformed rejection still carries a server-assigned id.
        assert!(lines[0].contains("\"kind\":\"malformed\""), "{}", lines[0]);
        assert!(lines[0].contains("\"request_id\":\""), "{}", lines[0]);

        // The snapshot taken after it sees that rejection — and the
        // introspection frames themselves are not counted as traffic.
        for needle in ["\"serve.received\":1", "\"serve.malformed\":1", "\"serve.completed\":0"] {
            assert!(lines[1].contains(needle), "missing {needle} in {}", lines[1]);
        }
        assert!(lines[1].contains("\"process\":"), "{}", lines[1]);
        assert!(lines[2].contains("\"metrics_text\":\""), "{}", lines[2]);
        assert!(lines[2].contains("serve.malformed 1"), "{}", lines[2]);

        let c = server.shutdown();
        assert_eq!((c.received, c.malformed), (1, 1));
    }
}
