//! Transport loops: stdin-jsonl and length-prefixed TCP.

use crate::protocol::{read_frame, write_frame};
use crate::server::Server;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// Serves newline-delimited JSON requests from `input`, writing one
/// response line per request to `output`. Returns the number of frames
/// served at EOF. Blank lines are skipped; a malformed line gets a typed
/// `malformed` response and service continues.
///
/// # Errors
///
/// Only transport I/O failures — request-level problems are answered in
/// band.
pub fn serve_jsonl(
    server: &Server,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<u64> {
    let mut frames = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(frames);
        }
        let frame = line.trim();
        if frame.is_empty() {
            continue;
        }
        writeln!(output, "{}", server.handle_frame_raw(frame))?;
        output.flush()?;
        frames += 1;
    }
}

/// Accept loop for the length-prefixed TCP transport: one handler thread
/// per connection, each serving frames sequentially until the peer
/// closes. Runs until the listener errors (or forever).
///
/// # Errors
///
/// Fatal accept errors; per-connection failures only end that
/// connection.
pub fn serve_tcp(server: Arc<Server>, listener: TcpListener) -> io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut reader = stream.try_clone().expect("clone stream");
            let mut writer = stream;
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                if write_frame(&mut writer, &server.handle_frame_raw(&frame)).is_err() {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn jsonl_answers_every_line_and_survives_garbage() {
        let (server, _) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("start");
        let input = "\n{\"id\":\"bad\"\n";
        let mut out = Vec::new();
        let n = serve_jsonl(&server, &mut input.as_bytes(), &mut out).expect("serve");
        assert_eq!(n, 1);
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("\"kind\":\"malformed\""), "{text}");
        let c = server.shutdown();
        assert_eq!(c.malformed, 1);
    }

    #[test]
    fn metrics_frames_report_live_counters_and_responses_carry_request_ids() {
        let (server, _) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("start");
        let input = "{\"id\":\"bad\"\n{\"metrics\":\"json\"}\n{\"metrics\":\"text\"}\n";
        let mut out = Vec::new();
        serve_jsonl(&server, &mut input.as_bytes(), &mut out).expect("serve");
        let text = String::from_utf8(out).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);

        // The malformed rejection still carries a server-assigned id.
        assert!(lines[0].contains("\"kind\":\"malformed\""), "{}", lines[0]);
        assert!(lines[0].contains("\"request_id\":\""), "{}", lines[0]);

        // The snapshot taken after it sees that rejection — and the
        // introspection frames themselves are not counted as traffic.
        for needle in ["\"serve.received\":1", "\"serve.malformed\":1", "\"serve.completed\":0"] {
            assert!(lines[1].contains(needle), "missing {needle} in {}", lines[1]);
        }
        assert!(lines[1].contains("\"process\":"), "{}", lines[1]);
        assert!(lines[2].contains("\"metrics_text\":\""), "{}", lines[2]);
        assert!(lines[2].contains("serve.malformed 1"), "{}", lines[2]);

        let c = server.shutdown();
        assert_eq!((c.received, c.malformed), (1, 1));
    }
}
