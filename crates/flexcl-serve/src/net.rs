//! Transport loops: stdin-jsonl and length-prefixed TCP.

use crate::protocol::{read_frame, write_frame};
use crate::server::Server;
use std::io::{self, BufRead, Write};
use std::net::TcpListener;
use std::sync::Arc;

/// Serves newline-delimited JSON requests from `input`, writing one
/// response line per request to `output`. Returns the number of frames
/// served at EOF. Blank lines are skipped; a malformed line gets a typed
/// `malformed` response and service continues.
///
/// # Errors
///
/// Only transport I/O failures — request-level problems are answered in
/// band.
pub fn serve_jsonl(
    server: &Server,
    input: &mut impl BufRead,
    output: &mut impl Write,
) -> io::Result<u64> {
    let mut frames = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line)? == 0 {
            return Ok(frames);
        }
        let frame = line.trim();
        if frame.is_empty() {
            continue;
        }
        let response = server.handle_frame(frame);
        writeln!(output, "{}", response.to_json())?;
        output.flush()?;
        frames += 1;
    }
}

/// Accept loop for the length-prefixed TCP transport: one handler thread
/// per connection, each serving frames sequentially until the peer
/// closes. Runs until the listener errors (or forever).
///
/// # Errors
///
/// Fatal accept errors; per-connection failures only end that
/// connection.
pub fn serve_tcp(server: Arc<Server>, listener: TcpListener) -> io::Result<()> {
    loop {
        let (stream, _) = listener.accept()?;
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let mut reader = stream.try_clone().expect("clone stream");
            let mut writer = stream;
            while let Ok(Some(frame)) = read_frame(&mut reader) {
                let response = server.handle_frame(&frame);
                if write_frame(&mut writer, &response.to_json()).is_err() {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn jsonl_answers_every_line_and_survives_garbage() {
        let (server, _) = Server::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .expect("start");
        let input = "\n{\"id\":\"bad\"\n";
        let mut out = Vec::new();
        let n = serve_jsonl(&server, &mut input.as_bytes(), &mut out).expect("serve");
        assert_eq!(n, 1);
        let text = String::from_utf8(out).expect("utf-8");
        assert!(text.contains("\"kind\":\"malformed\""), "{text}");
        let c = server.shutdown();
        assert_eq!(c.malformed, 1);
    }
}
