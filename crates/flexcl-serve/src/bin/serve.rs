//! `serve` — the FlexCL estimation server.
//!
//! ```text
//! serve --stdin [options]            # jsonl on stdin/stdout (CI, pipelines)
//! serve --listen 127.0.0.1:7143 [options]   # length-prefixed TCP frames
//!
//! OPTIONS:
//!   --workers N          worker threads / queue shards (default 2)
//!   --queue-cap N        bounded queue capacity; past it requests shed (default 64)
//!   --degrade-at N       queue depth per grid-degradation rung (default 8)
//!   --deadline-ms N      default per-request deadline (default 10000)
//!   --cache-dir PATH     enable the persistent result cache at PATH
//!   --cache-cap N        per-shard cache entry cap (default 64)
//!   --platform P         7v3 | ku060 (default 7v3)
//!   --threads N          max sweep threads per request (default 4)
//!   --enable-testhooks   honor per-request `fault` fields (tests only)
//!   --trace-out PATH     write span traces (JSONL) to PATH
//!   --trace-sample N     keep 1-in-N hot-loop spans (default 1 = all)
//!   --listeners N        epoll event loops sharing the port via
//!                        SO_REUSEPORT (default 1; Linux --listen only)
//!   --idle-timeout-ms N  close idle connections after N ms (default
//!                        30000; 0 disables reaping so idle connections
//!                        stay open; Linux --listen only)
//!   --blocking-tcp       use the thread-per-connection transport
//!                        instead of epoll
//! ```
//!
//! A `{"metrics":"json"}` (or `"text"`) frame on either transport
//! returns a live metrics snapshot instead of running a sweep.
//!
//! In `--stdin` mode the process exits 0 at EOF after printing a counter
//! summary to stderr — which is what the tier-1 smoke asserts on.

use flexcl_serve::server::ServerConfig;
use flexcl_serve::{net, Server};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut cfg = ServerConfig::default();
    let mut stdin_mode = false;
    let mut listen: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_sample: u64 = 1;
    let mut listeners: usize = 1;
    let mut idle_timeout_ms: u64 = 30_000;
    let mut blocking_tcp = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next().map(String::as_str).ok_or(format!("{flag} needs a value")).map(str::to_string)
        };
        match a.as_str() {
            "--stdin" => stdin_mode = true,
            "--listen" => listen = Some(value("--listen")?),
            "--workers" => cfg.workers = parse(&value("--workers")?)?,
            "--queue-cap" => cfg.queue_cap = parse(&value("--queue-cap")?)?,
            "--degrade-at" => cfg.degrade_at = parse(&value("--degrade-at")?)?,
            "--deadline-ms" => cfg.default_deadline_ms = parse(&value("--deadline-ms")?)?,
            "--cache-dir" => cfg.cache_dir = Some(value("--cache-dir")?.into()),
            "--cache-cap" => cfg.cache_cap_per_shard = parse(&value("--cache-cap")?)?,
            "--threads" => cfg.max_sweep_threads = parse(&value("--threads")?)?,
            "--enable-testhooks" => cfg.enable_testhooks = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--trace-sample" => trace_sample = parse(&value("--trace-sample")?)?,
            "--listeners" => listeners = parse(&value("--listeners")?)?,
            "--idle-timeout-ms" => idle_timeout_ms = parse(&value("--idle-timeout-ms")?)?,
            "--blocking-tcp" => blocking_tcp = true,
            "--platform" => {
                cfg.platform = match value("--platform")?.as_str() {
                    "7v3" => flexcl_core::Platform::virtex7_adm7v3(),
                    "ku060" => flexcl_core::Platform::ku060_nas120a(),
                    other => return Err(format!("unknown platform `{other}`")),
                }
            }
            "--help" | "-h" => {
                eprintln!("see crate docs: serve --stdin | --listen ADDR [options]");
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if stdin_mode == listen.is_some() {
        return Err("pick exactly one of --stdin or --listen ADDR".into());
    }

    if let Some(path) = &trace_out {
        let file = std::fs::File::create(path).map_err(|e| format!("trace-out {path}: {e}"))?;
        if !flexcl_obs::trace::install(Box::new(file), trace_sample) {
            eprintln!("trace: a tracer is already installed; --trace-out ignored");
        }
    }

    let (server, report) = Server::start(cfg).map_err(|e| format!("start: {e}"))?;
    if report != Default::default() {
        eprintln!(
            "cache: loaded {} entries, quarantined {}, cleaned {} temp files",
            report.loaded, report.quarantined, report.cleaned_tmp
        );
    }

    if let Some(addr) = listen {
        #[cfg(target_os = "linux")]
        if !blocking_tcp {
            let opts = net::epoll::EpollOptions {
                listeners,
                idle_timeout: std::time::Duration::from_millis(idle_timeout_ms),
                ..net::epoll::EpollOptions::default()
            };
            let transport = net::epoll::EpollTransport::bind(Arc::new(server), &addr, opts)
                .map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!(
                "listening on {} (epoll, {} listener{})",
                transport.local_addr(),
                listeners.max(1),
                if listeners.max(1) == 1 { "" } else { "s" }
            );
            return transport.join().map_err(|e| format!("event loop: {e}"));
        }
        #[cfg(not(target_os = "linux"))]
        let _ = (listeners, idle_timeout_ms, blocking_tcp);
        let listener =
            std::net::TcpListener::bind(&addr).map_err(|e| format!("bind {addr}: {e}"))?;
        eprintln!("listening on {addr} (blocking tcp)");
        net::serve_tcp(Arc::new(server), listener).map_err(|e| format!("accept: {e}"))
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let frames = net::serve_jsonl(&server, &mut stdin.lock(), &mut stdout.lock())
            .map_err(|e| format!("stdio: {e}"))?;
        let c = server.shutdown();
        eprintln!(
            "served {frames} frames: ok={} shed={} degraded={} deadline={} malformed={} \
             failed={} cache_hits={} cache_misses={}",
            c.completed,
            c.shed,
            c.degraded,
            c.deadline_expired,
            c.malformed,
            c.failed,
            c.cache_hits,
            c.cache_misses
        );
        if trace_out.is_some() {
            flexcl_obs::trace::shutdown();
        }
        Ok(())
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad value `{s}`"))
}
