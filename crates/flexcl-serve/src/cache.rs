//! Crash-safe persistent result cache: checksummed, atomically written,
//! LRU-sharded.
//!
//! The in-memory 64-entry analysis cache in `flexcl-core` dies with the
//! process; a serving deployment wants warm answers to survive restarts
//! and crashes. This cache generalizes it to disk with three invariants:
//!
//! 1. **Atomic visibility** — an entry is written to a temp file in its
//!    shard directory, fsynced, then renamed into place. Same-directory
//!    rename is atomic on POSIX, so a reader (or a post-crash reopen)
//!    sees either the whole entry or no entry, never a torn one.
//! 2. **Checksummed reads** — every entry carries a CRC32 of its
//!    payload in a fixed header. A record that fails validation — torn
//!    header, bad magic, length mismatch, checksum mismatch — is
//!    *quarantined* (moved to `quarantine/` for post-mortem) and treated
//!    as a miss, never served and never allowed to fail startup.
//! 3. **Bounded footprint** — entries hash-shard across 16 directories;
//!    each shard keeps an in-memory LRU index capped at a fixed entry
//!    count, evicting the coldest file on overflow. Payloads live only
//!    on disk, so server memory stays bounded by the index, not the
//!    corpus.
//!
//! Since FCACHEv2 every record also carries the request's *family*
//! fingerprint — the kernel/platform/workload content hash without the
//! grid or objective knobs. The cache keeps a refcounted in-memory index
//! of resident families, so a full-key miss can still be classified as a
//! *near miss* ([`PersistentCache::family_present`]): some variant of
//! this kernel was served before, and the per-family `KernelAnalysis` is
//! worth looking for in the serve-scoped analysis cache before
//! recomputing from scratch.

use std::collections::HashMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of shard directories (and LRU locks).
pub const SHARDS: usize = 16;

/// Entry header magic; bump the suffix on any format change so stale
/// caches quarantine instead of misparse. v2 added the family
/// fingerprint to the header.
const MAGIC: &str = "FCACHEv2";

/// A 128-bit content fingerprint, as produced by
/// [`crate::server::request_fingerprint`] (full keys) and
/// [`crate::server::request_family_fingerprint`] (family keys).
pub type Key = (u64, u64);

/// What [`PersistentCache::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpenReport {
    /// Valid entries indexed for serving.
    pub loaded: usize,
    /// Corrupt records moved to `quarantine/`.
    pub quarantined: usize,
    /// Orphaned temp files (a crash mid-write) removed.
    pub cleaned_tmp: usize,
}

/// Running cache traffic counters (relaxed atomics; exact under quiesce).
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: AtomicU64,
    /// Lookups that missed (including quarantined-on-read).
    pub misses: AtomicU64,
    /// Entries evicted by the per-shard LRU cap.
    pub evictions: AtomicU64,
    /// Corrupt records quarantined at open or on read.
    pub quarantined: AtomicU64,
}

struct Shard {
    /// Key → (last-use tick, family fingerprint). Payloads stay on disk.
    index: HashMap<Key, (u64, Key)>,
}

/// The disk-persisted result cache. All methods take `&self`; shards
/// lock independently, so concurrent workers only contend when they hash
/// to the same shard.
pub struct PersistentCache {
    root: PathBuf,
    cap_per_shard: usize,
    shards: Vec<Mutex<Shard>>,
    /// Family fingerprint → resident entry count, across all shards.
    /// Locked strictly *inside* a shard lock (or alone), never around
    /// one, so the two-level locking cannot deadlock.
    families: Mutex<HashMap<Key, usize>>,
    clock: AtomicU64,
    /// Traffic counters.
    pub stats: CacheStats,
}

fn shard_of(key: Key) -> usize {
    // Take the modulo in u64: `key.0 as usize` would drop the high 32 bits
    // on 32-bit targets, silently remapping every entry to a different
    // shard than a 64-bit writer chose for the same key.
    (key.0 % SHARDS as u64) as usize
}

fn entry_name(key: Key) -> String {
    format!("{:016x}{:016x}.fc", key.0, key.1)
}

fn parse_entry_name(name: &str) -> Option<Key> {
    let hex = name.strip_suffix(".fc")?;
    if hex.len() != 32 {
        return None;
    }
    let a = u64::from_str_radix(&hex[..16], 16).ok()?;
    let b = u64::from_str_radix(&hex[16..], 16).ok()?;
    Some((a, b))
}

/// CRC-32 (IEEE 802.3), bitwise implementation — the corpus entries are
/// small and the loop is not on the serving hot path (hits read one
/// file).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The record checksum covers the family token *and* the payload, so
/// header damage is caught exactly like payload damage.
fn record_crc(family_hex: &str, payload: &[u8]) -> u32 {
    let mut data = Vec::with_capacity(family_hex.len() + payload.len());
    data.extend_from_slice(family_hex.as_bytes());
    data.extend_from_slice(payload);
    crc32(&data)
}

/// Encodes `payload` into the on-disk record format. The family
/// fingerprint rides in the header as one 32-hex-digit token.
fn encode(payload: &[u8], family: Key) -> Vec<u8> {
    let fam = format!("{:016x}{:016x}", family.0, family.1);
    let mut rec =
        format!("{MAGIC} {:08x} {} {fam}\n", record_crc(&fam, payload), payload.len())
            .into_bytes();
    rec.extend_from_slice(payload);
    rec
}

/// Decodes and validates a record; `None` means corrupt (which includes
/// any pre-v2 record — stale formats quarantine by design).
fn decode(record: &[u8]) -> Option<(Vec<u8>, Key)> {
    let nl = record.iter().position(|&b| b == b'\n')?;
    let header = std::str::from_utf8(&record[..nl]).ok()?;
    let mut parts = header.split(' ');
    if parts.next()? != MAGIC {
        return None;
    }
    let crc = u32::from_str_radix(parts.next()?, 16).ok()?;
    let len: usize = parts.next()?.parse().ok()?;
    let fam = parts.next()?;
    if fam.len() != 32 || parts.next().is_some() {
        return None;
    }
    let family = (
        u64::from_str_radix(&fam[..16], 16).ok()?,
        u64::from_str_radix(&fam[16..], 16).ok()?,
    );
    let payload = &record[nl + 1..];
    if payload.len() != len || record_crc(fam, payload) != crc {
        return None;
    }
    Some((payload.to_vec(), family))
}

impl PersistentCache {
    /// Opens (creating if absent) a cache rooted at `root`, scanning
    /// every shard: valid entries are indexed, corrupt records are moved
    /// to `root/quarantine/`, and temp files orphaned by a crash
    /// mid-write are deleted. Corruption is never fatal — the report
    /// says what was found.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures (permissions, full disk) — never
    /// corrupt content.
    pub fn open(root: &Path, cap_per_shard: usize) -> io::Result<(PersistentCache, OpenReport)> {
        let cache = PersistentCache {
            root: root.to_path_buf(),
            cap_per_shard: cap_per_shard.max(1),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard { index: HashMap::new() })).collect(),
            families: Mutex::new(HashMap::new()),
            clock: AtomicU64::new(1),
            stats: CacheStats::default(),
        };
        fs::create_dir_all(cache.quarantine_dir())?;
        let mut report = OpenReport::default();
        for s in 0..SHARDS {
            let dir = cache.shard_dir(s);
            fs::create_dir_all(&dir)?;
            let mut shard = cache.shards[s].lock().unwrap_or_else(|e| e.into_inner());
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                let path = entry.path();
                if name.starts_with(".tmp-") {
                    fs::remove_file(&path)?;
                    report.cleaned_tmp += 1;
                    continue;
                }
                let valid = parse_entry_name(&name).filter(|&k| shard_of(k) == s).and_then(
                    |k| {
                        let rec = fs::read(&path).ok()?;
                        decode(&rec).map(|(_, family)| (k, family))
                    },
                );
                match valid {
                    Some((key, family)) => {
                        let tick = cache.clock.fetch_add(1, Ordering::Relaxed);
                        shard.index.insert(key, (tick, family));
                        cache.family_retain(family);
                        report.loaded += 1;
                    }
                    None => {
                        cache.quarantine(&path)?;
                        report.quarantined += 1;
                    }
                }
            }
            // Respect the cap even for a corpus written by a larger
            // configuration.
            while shard.index.len() > cache.cap_per_shard {
                cache.evict_coldest(s, &mut shard);
                cache.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        cache.stats.quarantined.store(report.quarantined as u64, Ordering::Relaxed);
        Ok((cache, report))
    }

    fn shard_dir(&self, s: usize) -> PathBuf {
        self.root.join(format!("shard_{s:02x}"))
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    fn entry_path(&self, key: Key) -> PathBuf {
        self.shard_dir(shard_of(key)).join(entry_name(key))
    }

    fn quarantine(&self, path: &Path) -> io::Result<()> {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        let dest = self.quarantine_dir().join(name.unwrap_or_else(|| "unknown".into()));
        // A same-named earlier quarantine is replaced; rename within one
        // filesystem never partially applies.
        fs::rename(path, dest)
    }

    /// Bumps the resident count of `family`.
    fn family_retain(&self, family: Key) {
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        *fams.entry(family).or_insert(0) += 1;
    }

    /// Drops one resident count of `family`, unindexing it at zero.
    fn family_release(&self, family: Key) {
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(n) = fams.get_mut(&family) {
            *n -= 1;
            if *n == 0 {
                fams.remove(&family);
            }
        }
    }

    /// True when some resident entry was stored under `family` — a miss
    /// on the full key with a present family is a *near miss*: the
    /// kernel's per-family analyses are likely warm in the analysis
    /// cache even though this exact grid/objective was never served.
    pub fn family_present(&self, family: Key) -> bool {
        self.families.lock().unwrap_or_else(|e| e.into_inner()).contains_key(&family)
    }

    fn evict_coldest(&self, s: usize, shard: &mut Shard) {
        let Some((&key, _)) = shard.index.iter().min_by_key(|(_, &(tick, _))| tick) else {
            return;
        };
        if let Some((_, family)) = shard.index.remove(&key) {
            self.family_release(family);
        }
        let _ = fs::remove_file(self.root.join(format!("shard_{s:02x}")).join(entry_name(key)));
    }

    /// Looks `key` up, verifying the record checksum on every read. A
    /// record that went corrupt since it was indexed is quarantined and
    /// reported as a miss.
    pub fn get(&self, key: Key) -> Option<Vec<u8>> {
        let s = shard_of(key);
        let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
        if !shard.index.contains_key(&key) {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(key);
        let payload = fs::read(&path).ok().and_then(|rec| decode(&rec));
        match payload {
            Some((p, family)) => {
                let tick = self.clock.fetch_add(1, Ordering::Relaxed);
                shard.index.insert(key, (tick, family));
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(p)
            }
            None => {
                if let Some((_, family)) = shard.index.remove(&key) {
                    self.family_release(family);
                }
                let _ = self.quarantine(&path);
                self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `payload` under `key`, tagged with its `family`
    /// fingerprint: temp file in the shard directory, fsync, atomic
    /// rename. Evicts the shard's coldest entry past the cap.
    ///
    /// # Errors
    ///
    /// I/O failures; on error no partially-written entry is visible.
    pub fn put(&self, key: Key, family: Key, payload: &[u8]) -> io::Result<()> {
        let s = shard_of(key);
        let dir = self.shard_dir(s);
        let tick = self.clock.fetch_add(1, Ordering::Relaxed);
        let tmp = dir.join(format!(".tmp-{tick}"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&encode(payload, family))?;
            f.sync_all()?;
        }
        let dest = dir.join(entry_name(key));
        if let Err(e) = fs::rename(&tmp, &dest) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        let mut shard = self.shards[s].lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, old_family)) = shard.index.insert(key, (tick, family)) {
            self.family_release(old_family);
        }
        self.family_retain(family);
        while shard.index.len() > self.cap_per_shard {
            self.evict_coldest(s, &mut shard);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Entries currently indexed across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).index.len())
            .sum()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flips one payload byte of `key`'s on-disk record *in place*,
    /// bypassing the atomic write path. Returns whether an entry was
    /// corrupted. Fault injection only: this simulates bit rot /
    /// torn-write damage so tests can prove the checksum path
    /// quarantines instead of serving garbage.
    #[doc(hidden)]
    pub fn corrupt_entry_for_test(&self, key: Key) -> bool {
        let path = self.entry_path(key);
        let Ok(mut rec) = fs::read(&path) else { return false };
        let Some(nl) = rec.iter().position(|&b| b == b'\n') else { return false };
        if nl + 1 >= rec.len() {
            return false;
        }
        rec[nl + 1] ^= 0x41;
        let Ok(mut f) = fs::File::create(&path) else { return false };
        f.write_all(&rec).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("flexcl-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    const FAM: Key = (0xAA, 0xBB);

    #[test]
    fn record_codec_rejects_damage() {
        let rec = encode(b"hello", FAM);
        assert_eq!(decode(&rec), Some((b"hello".to_vec(), FAM)));
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 1;
            assert_ne!(decode(&bad).map(|(p, _)| p).as_deref(), Some(&b"hello"[..]), "byte {i}");
        }
        assert_eq!(decode(b""), None);
        // Pre-v2 records (no family token) quarantine rather than parse.
        assert_eq!(decode(b"FCACHEv1 deadbeef 5\nhello"), None);
        assert_eq!(decode(b"FCACHEv2 3610a686 5\nhello"), None);
    }

    #[test]
    fn put_get_survive_reopen_and_family_index_rebuilds() {
        let dir = tmpdir("reopen");
        let (c, report) = PersistentCache::open(&dir, 8).expect("open");
        assert_eq!(report, OpenReport::default());
        c.put((1, 2), FAM, b"alpha").expect("put");
        c.put((3, 4), (0xCC, 0xDD), b"beta").expect("put");
        assert_eq!(c.get((1, 2)).as_deref(), Some(&b"alpha"[..]));
        assert!(c.family_present(FAM) && c.family_present((0xCC, 0xDD)));
        assert!(!c.family_present((0, 0)));
        drop(c);

        let (c, report) = PersistentCache::open(&dir, 8).expect("reopen");
        assert_eq!(report.loaded, 2);
        assert_eq!(report.quarantined, 0);
        assert_eq!(c.get((3, 4)).as_deref(), Some(&b"beta"[..]));
        // The family index is rebuilt from the record headers.
        assert!(c.family_present(FAM) && c.family_present((0xCC, 0xDD)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_evicts_coldest_within_shard() {
        let dir = tmpdir("lru");
        let (c, _) = PersistentCache::open(&dir, 2).expect("open");
        // All three keys land in shard 0 (key.0 % 16 == 0).
        c.put((0, 1), FAM, b"one").expect("put");
        c.put((16, 2), (0xCC, 0xDD), b"two").expect("put");
        assert!(c.get((0, 1)).is_some()); // warm "one"
        c.put((32, 3), FAM, b"three").expect("put"); // evicts coldest = "two"
        assert_eq!(c.len(), 2);
        assert!(c.get((16, 2)).is_none());
        assert!(c.get((0, 1)).is_some() && c.get((32, 3)).is_some());
        assert_eq!(c.stats.evictions.load(Ordering::Relaxed), 1);
        // Evicting "two" dropped the last entry of its family; FAM still
        // has two residents.
        assert!(!c.family_present((0xCC, 0xDD)));
        assert!(c.family_present(FAM));
        let _ = fs::remove_dir_all(&dir);
    }
}
