//! The wire protocol: requests, responses, and frame transport.
//!
//! One request/response pair is one JSON object. Two transports carry
//! them:
//!
//! - **stdin-jsonl** — one object per line; the `serve` binary reads
//!   requests from stdin and writes responses to stdout, which is what
//!   the CI smoke and shell pipelines use.
//! - **length-prefixed TCP** — each frame is a 4-byte big-endian payload
//!   length followed by that many bytes of JSON. The length cap rejects
//!   hostile frames before allocating.
//!
//! A malformed frame never kills the connection: the server answers with
//! a typed `status:"error", kind:"malformed"` response (echoing the `id`
//! when one could be salvaged) and keeps reading.

use crate::json::{self, Json};
use std::fmt::Write as _;
use std::io::{self, Read, Write};

/// Upper bound on a TCP frame payload: OpenCL sources are small; 4 MiB
/// leaves two orders of magnitude of headroom.
pub const MAX_FRAME_LEN: usize = 4 << 20;

/// Fault classes a request may arm (testhook deployments only): one
/// poisoned request must be rejected with a typed error while concurrent
/// clean requests finish unharmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestFault {
    /// Panic inside every family analysis of this request's sweep.
    Panic,
    /// Panic inside the estimate of candidate 0.
    EstimatePanic,
    /// Run profiling with a starvation fuel budget (typed
    /// `resource-limit` degradation).
    Fuel,
    /// Complete normally, then corrupt this request's persisted cache
    /// entry in place (exercises checksum quarantine on the next read).
    CorruptCache,
}

impl RequestFault {
    fn parse(s: &str) -> Option<RequestFault> {
        match s {
            "panic" => Some(RequestFault::Panic),
            "estimate-panic" => Some(RequestFault::EstimatePanic),
            "fuel" => Some(RequestFault::Fuel),
            "corrupt-cache" => Some(RequestFault::CorruptCache),
            _ => None,
        }
    }
}

/// One sweep request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// OpenCL source text.
    pub src: String,
    /// Kernel name; `None` means "the only kernel in the file".
    pub kernel: Option<String>,
    /// NDRange global size.
    pub global: (u64, u64),
    /// Requested sweep grid preset (`standard` | `fine` | `ultra`). The
    /// server may substitute a coarser grid under load — see the
    /// `degraded` response field.
    pub grid: String,
    /// Per-request deadline in milliseconds; `None` uses the server
    /// default.
    pub deadline_ms: Option<u64>,
    /// Sweep thread count (clamped by the server).
    pub threads: usize,
    /// Enable branch-and-bound pruning.
    pub prune: bool,
    /// Workload synthesis knobs.
    pub synthesis: crate::workload::SynthesisSpec,
    /// Armed fault (ignored unless the server enables testhooks).
    pub fault: Option<RequestFault>,
}

/// A protocol-level parse failure, carrying whatever id could be
/// salvaged from the broken frame so the client can still correlate the
/// rejection.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// The request id, if the frame got far enough to carry one.
    pub id: Option<String>,
    /// What was wrong.
    pub message: String,
}

/// Ceiling on the NDRange product accepted over the wire: bounds both
/// profiling work and synthesized buffer memory per request.
pub const MAX_GLOBAL_WORK: u64 = 1 << 24;

impl Request {
    /// Parses one request frame.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] (malformed JSON, missing/invalid fields,
    /// out-of-range geometry), salvaging `id` when present.
    pub fn parse(frame: &str) -> Result<Request, ParseError> {
        let v = json::parse(frame)
            .map_err(|message| ParseError { id: None, message: format!("bad json: {message}") })?;
        let id = v.get("id").and_then(Json::as_str).map(str::to_string);
        let fail = |message: String| ParseError { id: id.clone(), message };

        let id_val = id.clone().ok_or_else(|| fail("missing string field `id`".into()))?;
        let src = v
            .get("src")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("missing string field `src`".into()))?
            .to_string();

        let global = match v.get("global") {
            Some(Json::Arr(xs)) if xs.len() == 2 => {
                let x = xs[0].as_u64().ok_or_else(|| fail("bad `global[0]`".into()))?;
                let y = xs[1].as_u64().ok_or_else(|| fail("bad `global[1]`".into()))?;
                (x, y)
            }
            Some(n) => (n.as_u64().ok_or_else(|| fail("bad `global`".into()))?, 1),
            None => return Err(fail("missing field `global`".into())),
        };
        if global.0 == 0 || global.1 == 0 {
            return Err(fail("`global` dimensions must be positive".into()));
        }
        if global.0.saturating_mul(global.1) > MAX_GLOBAL_WORK {
            return Err(fail(format!(
                "`global` work {}x{} exceeds the {MAX_GLOBAL_WORK}-item service ceiling",
                global.0, global.1
            )));
        }

        let grid = match v.get("grid") {
            None => "standard".to_string(),
            Some(g) => {
                let name = g.as_str().ok_or_else(|| fail("bad `grid`".into()))?;
                if flexcl_core::config::SweepGrid::by_name(name).is_none() {
                    return Err(fail(format!(
                        "unknown grid `{name}` (use standard, fine or ultra)"
                    )));
                }
                name.to_string()
            }
        };

        let u64_field = |key: &str| -> Result<Option<u64>, ParseError> {
            match v.get(key) {
                None | Some(Json::Null) => Ok(None),
                Some(n) => n.as_u64().map(Some).ok_or_else(|| fail(format!("bad `{key}`"))),
            }
        };

        let deadline_ms = u64_field("deadline_ms")?;
        let threads = u64_field("threads")?.unwrap_or(1) as usize;
        let prune = match v.get("prune") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err(fail("bad `prune`".into())),
        };
        let buf_elems = u64_field("buf_elems")?;
        let scalar_int = match v.get("scalar_int") {
            None => 16,
            Some(n) => {
                let f = n.as_f64().ok_or_else(|| fail("bad `scalar_int`".into()))?;
                if f.fract() != 0.0 {
                    return Err(fail("bad `scalar_int`".into()));
                }
                f as i64
            }
        };
        let scalar_float = match v.get("scalar_float") {
            None => 1.0,
            Some(n) => n.as_f64().ok_or_else(|| fail("bad `scalar_float`".into()))?,
        };
        let fault = match v.get("fault") {
            None | Some(Json::Null) => None,
            Some(f) => {
                let s = f.as_str().ok_or_else(|| fail("bad `fault`".into()))?;
                Some(RequestFault::parse(s).ok_or_else(|| {
                    fail(format!(
                        "unknown fault `{s}` (use panic, estimate-panic, fuel or corrupt-cache)"
                    ))
                })?)
            }
        };

        Ok(Request {
            id: id_val,
            src,
            kernel: v.get("kernel").and_then(Json::as_str).map(str::to_string),
            global,
            grid,
            deadline_ms,
            threads,
            prune,
            synthesis: crate::workload::SynthesisSpec { buf_elems, scalar_int, scalar_float },
            fault,
        })
    }
}

/// The result digest of a completed sweep — the portion of a
/// [`flexcl_core::DseResult`] that crosses the wire and the persistent
/// cache. Cycle counts serialize through Rust's shortest-roundtrip `f64`
/// formatting, so equality of the serialized form is equality of the
/// bits.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Design points evaluated (after pruning).
    pub points: u64,
    /// Feasible design points.
    pub feasible: u64,
    /// Candidates skipped with per-point diagnostics.
    pub skipped: u64,
    /// Display form of the best feasible configuration, empty if none.
    pub best_config: String,
    /// Estimated cycles of the best feasible point; `None` if none.
    pub best_cycles: Option<f64>,
}

impl SweepSummary {
    /// Digests a sweep result.
    pub fn of(result: &flexcl_core::DseResult) -> SweepSummary {
        let best = result.best();
        SweepSummary {
            points: result.points.len() as u64,
            feasible: result.feasible_count() as u64,
            skipped: result.diagnostics.failed.len() as u64,
            best_config: best.map(|p| p.config.to_string()).unwrap_or_default(),
            best_cycles: best.map(|p| p.estimate.cycles),
        }
    }

    /// Serializes to the JSON object body used both on the wire and as
    /// the persistent cache payload.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            r#"{{"points":{},"feasible":{},"skipped":{},"best_config":"#,
            self.points, self.feasible, self.skipped
        );
        json::push_escaped(&mut s, &self.best_config);
        match self.best_cycles {
            Some(c) => {
                let _ = write!(s, r#","best_cycles":{c}}}"#);
            }
            None => s.push_str(r#","best_cycles":null}"#),
        }
        s
    }

    /// Parses a payload produced by [`SweepSummary::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field — the cache
    /// layer treats any error as a corrupt entry.
    pub fn from_json(payload: &str) -> Result<SweepSummary, String> {
        let v = json::parse(payload)?;
        let field = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("bad `{k}`"));
        Ok(SweepSummary {
            points: field("points")?,
            feasible: field("feasible")?,
            skipped: field("skipped")?,
            best_config: v
                .get("best_config")
                .and_then(Json::as_str)
                .ok_or("bad `best_config`")?
                .to_string(),
            best_cycles: match v.get("best_cycles") {
                Some(Json::Null) => None,
                Some(n) => Some(n.as_f64().ok_or("bad `best_cycles`")?),
                None => return Err("missing `best_cycles`".into()),
            },
        })
    }
}

/// Where a served answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheDisposition {
    /// Served from the persistent cache.
    Hit,
    /// Computed and persisted.
    Miss,
    /// Computed; the server runs without a cache.
    Off,
}

impl CacheDisposition {
    fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
            CacheDisposition::Off => "off",
        }
    }
}

/// One response frame.
#[derive(Debug, Clone)]
pub enum Response {
    /// The sweep completed.
    Ok {
        /// Echoed request id.
        id: String,
        /// Result digest.
        summary: SweepSummary,
        /// How many degradation-ladder rungs were applied (0 = the grid
        /// the client asked for).
        degraded: u32,
        /// The grid actually swept.
        grid_used: String,
        /// Cache hit/miss/off.
        cache: CacheDisposition,
        /// Service time (queue wait + compute), milliseconds.
        elapsed_ms: u64,
        /// True when this answer was fanned out from another request's
        /// in-flight sweep instead of executing its own. Omitted from
        /// the wire form when false, so a coalesced waiter's frame
        /// differs from the leader's only by this marker and the
        /// identity fields — the result bytes are identical.
        coalesced: bool,
        /// Server-assigned request id (stable per frame, generated at
        /// admission). Empty until the server stamps it; omitted from
        /// the wire form when empty.
        request_id: String,
    },
    /// The request was rejected with a typed error.
    Err {
        /// Echoed request id ("?" when unsalvageable).
        id: String,
        /// Stable error kind string (an [`flexcl_core::ErrorKind`]
        /// rendering, or `malformed` for protocol errors).
        kind: String,
        /// Human-readable diagnosis.
        message: String,
        /// Back-off hint for `overloaded` rejections.
        retry_after_ms: Option<u64>,
        /// Server-assigned request id, stamped even on rejections (and
        /// on malformed frames) so every answer is traceable.
        request_id: String,
    },
}

impl Response {
    /// The echoed request id.
    pub fn id(&self) -> &str {
        match self {
            Response::Ok { id, .. } | Response::Err { id, .. } => id,
        }
    }

    /// The response's status/kind discriminator: `"ok"` or the error
    /// kind string.
    pub fn kind(&self) -> &str {
        match self {
            Response::Ok { .. } => "ok",
            Response::Err { kind, .. } => kind,
        }
    }

    /// Builds a typed error response from a pipeline error.
    pub fn from_error(id: &str, e: &flexcl_core::FlexclError) -> Response {
        Response::Err {
            id: id.to_string(),
            kind: e.kind().to_string(),
            message: e.to_string(),
            retry_after_ms: match e {
                flexcl_core::FlexclError::Overloaded { retry_after_ms, .. } => {
                    Some(*retry_after_ms)
                }
                _ => None,
            },
            request_id: String::new(),
        }
    }

    /// Builds the `malformed` rejection for a frame that failed to parse.
    pub fn malformed(e: &ParseError) -> Response {
        Response::Err {
            id: e.id.clone().unwrap_or_else(|| "?".to_string()),
            kind: "malformed".to_string(),
            message: e.message.clone(),
            retry_after_ms: None,
            request_id: String::new(),
        }
    }

    /// Stamps the server-assigned request id onto the response.
    pub fn set_request_id(&mut self, rid: &str) {
        match self {
            Response::Ok { request_id, .. } | Response::Err { request_id, .. } => {
                rid.clone_into(request_id);
            }
        }
    }

    /// The server-assigned request id, empty when never stamped.
    pub fn request_id(&self) -> &str {
        match self {
            Response::Ok { request_id, .. } | Response::Err { request_id, .. } => request_id,
        }
    }

    /// The back-off hint attached to `overloaded` rejections, if any.
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            Response::Ok { .. } => None,
            Response::Err { retry_after_ms, .. } => *retry_after_ms,
        }
    }

    /// Serializes the response to its single-line JSON frame. The
    /// server-assigned `request_id` (when stamped) is always the last
    /// field, so the leading field layout stays grep-stable.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        match self {
            Response::Ok { id, summary, degraded, grid_used, cache, elapsed_ms, coalesced, .. } => {
                s.push_str(r#"{"id":"#);
                json::push_escaped(&mut s, id);
                s.push_str(r#","status":"ok","result":"#);
                s.push_str(&summary.to_json());
                let _ = write!(
                    s,
                    r#","degraded":{degraded},"grid_used":"{grid_used}","cache":"{}","elapsed_ms":{elapsed_ms}"#,
                    cache.as_str()
                );
                if *coalesced {
                    s.push_str(r#","coalesced":true"#);
                }
            }
            Response::Err { id, kind, message, retry_after_ms, .. } => {
                s.push_str(r#"{"id":"#);
                json::push_escaped(&mut s, id);
                s.push_str(r#","status":"error","kind":"#);
                json::push_escaped(&mut s, kind);
                s.push_str(r#","message":"#);
                json::push_escaped(&mut s, message);
                if let Some(ms) = retry_after_ms {
                    let _ = write!(s, r#","retry_after_ms":{ms}"#);
                }
            }
        }
        let rid = self.request_id();
        if !rid.is_empty() {
            s.push_str(r#","request_id":"#);
            json::push_escaped(&mut s, rid);
        }
        s.push('}');
        s
    }
}

/// Reads one length-prefixed frame; `Ok(None)` is a clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// I/O errors, a truncated frame, an oversized length prefix, or
/// non-UTF-8 payload bytes.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let n = u32::from_be_bytes(len) as usize;
    if n > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not utf-8"))
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// I/O errors; a payload larger than [`MAX_FRAME_LEN`] is rejected
/// before any bytes are written.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = Request::parse(
            r#"{"id":"r1","src":"__kernel void k(){}","kernel":"k","global":[256,2],
               "grid":"fine","deadline_ms":50,"threads":2,"prune":true,
               "buf_elems":64,"scalar_int":3,"scalar_float":2.5,"fault":"panic"}"#,
        )
        .expect("parse");
        assert_eq!(r.id, "r1");
        assert_eq!(r.global, (256, 2));
        assert_eq!(r.grid, "fine");
        assert_eq!(r.deadline_ms, Some(50));
        assert!(r.prune);
        assert_eq!(r.synthesis.buf_elems, Some(64));
        assert_eq!(r.fault, Some(RequestFault::Panic));
    }

    #[test]
    fn defaults_and_scalar_global() {
        let r = Request::parse(r#"{"id":"a","src":"s","global":4096}"#).expect("parse");
        assert_eq!(r.global, (4096, 1));
        assert_eq!(r.grid, "standard");
        assert_eq!(r.threads, 1);
        assert!(!r.prune && r.fault.is_none() && r.deadline_ms.is_none());
    }

    #[test]
    fn salvages_id_from_malformed_requests() {
        let e = Request::parse(r#"{"id":"x","global":[0,1],"src":"s"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("x"));
        let e = Request::parse(r#"{"id":"y","src":"s"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("y"));
        let e = Request::parse(r#"{"id":"z","#).unwrap_err();
        assert_eq!(e.id, None);
        assert_eq!(Response::malformed(&e).id(), "?");
    }

    #[test]
    fn rejects_oversized_geometry_and_unknown_enums() {
        for frame in [
            format!(r#"{{"id":"a","src":"s","global":[{},2]}}"#, MAX_GLOBAL_WORK),
            r#"{"id":"a","src":"s","global":64,"grid":"mega"}"#.to_string(),
            r#"{"id":"a","src":"s","global":64,"fault":"rm-rf"}"#.to_string(),
        ] {
            assert!(Request::parse(&frame).is_err(), "accepted {frame}");
        }
    }

    #[test]
    fn summary_round_trips_exactly() {
        let s = SweepSummary {
            points: 330,
            feasible: 200,
            skipped: 1,
            best_config: "wg=64x1 pipe pes=8".to_string(),
            best_cycles: Some(123456.789012345),
        };
        let back = SweepSummary::from_json(&s.to_json()).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.best_cycles.unwrap().to_bits(), s.best_cycles.unwrap().to_bits());
        let none = SweepSummary { best_cycles: None, best_config: String::new(), ..s };
        assert_eq!(SweepSummary::from_json(&none.to_json()).expect("round trip"), none);
    }

    #[test]
    fn request_id_is_stamped_last_and_absent_until_stamped() {
        let e = Request::parse(r#"{"id":"z","#).unwrap_err();
        let mut r = Response::malformed(&e);
        assert_eq!(r.request_id(), "");
        assert!(!r.to_json().contains("request_id"));
        r.set_request_id("ab12cd34-000007");
        let j = r.to_json();
        assert!(j.ends_with(r#","request_id":"ab12cd34-000007"}"#), "{j}");
        // The leading field layout the CI greps match is unchanged.
        assert!(j.contains(r#""status":"error","kind":"malformed""#), "{j}");
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, r#"{"id":"a"}"#).expect("write");
        write_frame(&mut buf, "second").expect("write");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some(r#"{"id":"a"}"#));
        assert_eq!(read_frame(&mut r).expect("read").as_deref(), Some("second"));
        assert_eq!(read_frame(&mut r).expect("read"), None);

        let huge = (MAX_FRAME_LEN as u32 + 1).to_be_bytes();
        assert!(read_frame(&mut &huge[..]).is_err());
        let truncated = [0u8, 0, 0, 9, b'x'];
        assert!(read_frame(&mut &truncated[..]).is_err());
    }
}
