//! The estimation server: a sharded thread pool with robustness as the
//! organizing principle.
//!
//! Every request passes four gates, in order:
//!
//! 1. **Admission** — the queue is bounded. A request arriving at a full
//!    queue is shed immediately with a typed `overloaded` rejection and
//!    a retry-after hint derived from observed service time; it never
//!    waits to fail.
//! 2. **Degradation** — under queue pressure (but below shedding) the
//!    requested [`SweepGrid`] is walked down the ladder
//!    `ultra → fine → standard`, one rung per `degrade_at` of queue
//!    depth. The response records how many rungs were applied, so a
//!    client always knows it got a degraded answer.
//! 3. **Deadline** — every request has one (its own or the server
//!    default). The sweep runs under a [`CancelToken`]; an expired
//!    deadline stops work at the next chunk-claim boundary and the
//!    client gets a typed `deadline` rejection carrying how far the
//!    sweep got. Requests that expire while still queued are rejected
//!    without doing any work at all.
//! 4. **Isolation** — panics, fuel exhaustion and cache corruption armed
//!    per-request (testhook deployments) or arising naturally are
//!    contained by the engine's typed-error backstops; one poisoned
//!    request can only ever fail itself.
//!
//! Between admission and the queue sits **coalescing**: a request whose
//! content fingerprint matches a sweep already queued or executing does
//! not enter the queue at all — it parks on that sweep's completion list
//! and the single result fans out to every waiter when the leader
//! finishes. Each waiter is judged against its *own* deadline at
//! fan-out: one that expired while parked gets a typed `deadline`
//! rejection without touching the shared sweep, and a still-live waiter
//! whose shared sweep died at the leader's deadline gets a retryable
//! `overloaded` (never a spurious `deadline`). Coalesced answers carry
//! a `coalesced: true` marker; the result payload is bit-identical to
//! the leader's.
//!
//! The service core is continuation-based: [`Server::submit_async`]
//! accepts a completion callback and never blocks the caller, which is
//! what the epoll transport needs — [`Server::handle_frame`] is the
//! blocking convenience wrapper over it.
//!
//! Requests shard by content fingerprint, so identical sources land on
//! the same worker and the same [`PersistentCache`] entries.

use crate::cache::{Key, OpenReport, PersistentCache};
use crate::protocol::{CacheDisposition, Request, RequestFault, Response, SweepSummary};
use crate::workload;
use flexcl_core::config::SweepGrid;
use flexcl_core::dse::testhook::InjectedFault;
use flexcl_core::{AnalysisCache, CancelToken, DseOptions, FlexclError, Platform, ProfileFuel};
use flexcl_obs::{metrics, trace};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A continuation invoked exactly once with the finished [`Response`].
/// May run on the submitting thread (shed, malformed, coalesced-expired)
/// or on a worker thread (everything else).
pub type Completion = Box<dyn FnOnce(Response) + Send + 'static>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= queue shards).
    pub workers: usize,
    /// Bounded queue capacity across all shards; arrivals past it shed.
    pub queue_cap: usize,
    /// Queue depth per degradation rung: at `degrade_at` queued requests
    /// the grid drops one rung, at `2*degrade_at` two, and so on.
    pub degrade_at: usize,
    /// Deadline for requests that do not carry one, milliseconds.
    pub default_deadline_ms: u64,
    /// Directory for the persistent result cache; `None` serves
    /// compute-only.
    pub cache_dir: Option<PathBuf>,
    /// Per-shard entry cap of the persistent cache.
    pub cache_cap_per_shard: usize,
    /// Target platform for every sweep.
    pub platform: Platform,
    /// Honor per-request `fault` fields. Off by default: production
    /// traffic must not be able to arm faults.
    pub enable_testhooks: bool,
    /// Clamp on per-request sweep threads.
    pub max_sweep_threads: usize,
    /// Entry cap of the serve-scoped analysis cache (per-family
    /// `KernelAnalysis` reuse across requests). 0 disables reuse.
    pub analysis_cache_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            degrade_at: 8,
            default_deadline_ms: 10_000,
            cache_dir: None,
            cache_cap_per_shard: 64,
            platform: Platform::virtex7_adm7v3(),
            enable_testhooks: false,
            max_sweep_threads: 4,
            analysis_cache_entries: 256,
        }
    }
}

/// Monotonic service counters, readable while the server runs. Backed by
/// the server's own [`metrics::Registry`] instance, so the `metrics`
/// introspection frame and [`Server::counters`] read the same cells —
/// there is no mirrored state to drift.
#[derive(Debug)]
struct Counters {
    received: metrics::Counter,
    completed: metrics::Counter,
    shed: metrics::Counter,
    degraded: metrics::Counter,
    deadline_expired: metrics::Counter,
    malformed: metrics::Counter,
    failed: metrics::Counter,
    cache_hits: metrics::Counter,
    cache_misses: metrics::Counter,
    /// Requests answered by fan-out from another request's in-flight
    /// sweep instead of executing their own.
    coalesced: metrics::Counter,
    /// Full-key persistent-cache misses whose *family* fingerprint was
    /// resident — the per-family analysis-reuse path.
    near_miss: metrics::Counter,
    /// Per-family analyses reused from the serve-scoped analysis cache.
    analysis_hits: metrics::Counter,
    /// Per-family analyses computed fresh.
    analysis_misses: metrics::Counter,
    /// Requests queued right now (admission increments, pickup decrements).
    queue_depth: metrics::Gauge,
    /// Distinct fingerprints with an in-flight sweep right now.
    inflight_keys: metrics::Gauge,
    /// Service time (queue wait + compute) per answered request, µs.
    service_us: metrics::Histogram,
}

impl Counters {
    fn register(r: &metrics::Registry) -> Counters {
        Counters {
            received: r.counter("serve.received"),
            completed: r.counter("serve.completed"),
            shed: r.counter("serve.shed"),
            degraded: r.counter("serve.degraded"),
            deadline_expired: r.counter("serve.deadline_expired"),
            malformed: r.counter("serve.malformed"),
            failed: r.counter("serve.failed"),
            cache_hits: r.counter("serve.cache_hits"),
            cache_misses: r.counter("serve.cache_misses"),
            coalesced: r.counter("serve.coalesced"),
            near_miss: r.counter("serve.near_miss"),
            analysis_hits: r.counter("serve.analysis_hits"),
            analysis_misses: r.counter("serve.analysis_misses"),
            queue_depth: r.gauge("serve.queue_depth"),
            inflight_keys: r.gauge("serve.inflight_keys"),
            service_us: r.histogram("serve.service_us"),
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames received (well-formed or not).
    pub received: u64,
    /// Requests answered `ok`.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered from a coarser grid than asked.
    pub degraded: u64,
    /// Requests rejected at/past their deadline (queued or mid-sweep).
    pub deadline_expired: u64,
    /// Frames rejected as malformed.
    pub malformed: u64,
    /// Requests rejected with any other typed pipeline error.
    pub failed: u64,
    /// Persistent-cache hits.
    pub cache_hits: u64,
    /// Persistent-cache misses (including cache-off computes).
    pub cache_misses: u64,
    /// Requests answered by coalescing onto an in-flight sweep.
    pub coalesced: u64,
    /// Persistent-cache misses whose family fingerprint was resident.
    pub near_miss: u64,
    /// Per-family analyses reused from the serve-scoped analysis cache.
    pub analysis_hits: u64,
    /// Per-family analyses computed fresh.
    pub analysis_misses: u64,
}

struct Job {
    req: Request,
    grid_used: String,
    degraded: u32,
    deadline: Instant,
    accepted: Instant,
    /// Full content fingerprint (also the coalescing key).
    key: Key,
    /// Family fingerprint (grid/objective-independent).
    family: Key,
    /// Whether this job owns the in-flight table entry for `key` (and
    /// must fan its result out to the parked waiters on completion). A
    /// duplicate that could not coalesce — waiter list full — runs as
    /// an independent job with `leader == false` and leaves the entry
    /// alone.
    leader: bool,
    complete: Completion,
    /// Trace id of the `serve.request` span open on the connection
    /// thread, so worker-side spans attach to the same tree (0 when
    /// tracing is off).
    span: u64,
}

/// A request parked on an in-flight sweep, waiting for its fan-out.
struct Waiter {
    id: String,
    accepted: Instant,
    deadline: Instant,
    degraded: u32,
    complete: Completion,
}

/// The completion list of one in-flight sweep.
struct InFlight {
    waiters: Vec<Waiter>,
}

struct ShardQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

struct Inner {
    cfg: ServerConfig,
    shards: Vec<ShardQueue>,
    queued: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
    /// Per-instance registry backing [`Counters`]; snapshotted whole by
    /// the `metrics` introspection frame.
    registry: metrics::Registry,
    cache: Option<PersistentCache>,
    /// Fingerprint → completion list of the sweep currently queued or
    /// executing for it. Guarded by one mutex: entries are touched once
    /// per request (admission) plus once per sweep (fan-out), far off
    /// the estimation hot path.
    inflight: Mutex<HashMap<Key, InFlight>>,
    /// Serve-scoped per-family analysis store, threaded through every
    /// sweep via [`flexcl_core::explore_space_cached`]. Dies with the
    /// server instance.
    analysis: AnalysisCache,
    /// EWMA of service time in microseconds (×16 fixed point), feeding
    /// the retry-after hint.
    service_ewma_us: AtomicU64,
    /// Instance tag baked into every request id, so ids from different
    /// server lifetimes never collide.
    boot_tag: u32,
    /// Per-frame sequence number behind the request ids.
    req_seq: AtomicU64,
}

/// A running server. Cloning the handle shares the instance; call
/// [`Server::shutdown`] on the last handle to stop the workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Content fingerprint of a request: everything that determines the
/// answer — source, kernel, geometry, grid actually swept, pruning, and
/// synthesis values — and nothing that does not (id, deadline, thread
/// count; sweeps are bit-identical across those by construction). This
/// is the persistent-cache key *and* the coalescing key. An armed fault
/// is deliberately *not* part of the key — a `corrupt-cache` attacker
/// must damage the same entry its clean twin reads for the quarantine
/// path to mean anything — so faulted requests are instead barred from
/// coalescing entirely (see [`Server::submit_async`]).
pub fn request_fingerprint(req: &Request, grid_used: &str, platform_tag: &str) -> Key {
    fingerprint_of(req, platform_tag, Some((grid_used, req.prune)))
}

/// Family fingerprint of a request: the full fingerprint minus the
/// grid/objective knobs (grid swept, pruning). Two requests for the
/// same kernel, platform and workload share a family even when they
/// sweep different grids — which is exactly when the per-family
/// `KernelAnalysis` entries in the serve-scoped analysis cache are
/// reusable.
pub fn request_family_fingerprint(req: &Request, platform_tag: &str) -> Key {
    fingerprint_of(req, platform_tag, None)
}

fn fingerprint_of(req: &Request, platform_tag: &str, variant: Option<(&str, bool)>) -> Key {
    let mut parts = (0u64, 0u64);
    for (seed, out) in [(0x9E37_79B9u64, &mut parts.0), (0xC2B2_AE35u64, &mut parts.1)] {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        req.src.hash(&mut h);
        req.kernel.hash(&mut h);
        req.global.hash(&mut h);
        req.synthesis.buf_elems.hash(&mut h);
        req.synthesis.scalar_int.hash(&mut h);
        req.synthesis.scalar_float.to_bits().hash(&mut h);
        platform_tag.hash(&mut h);
        if let Some((grid_used, prune)) = variant {
            grid_used.hash(&mut h);
            prune.hash(&mut h);
        }
        *out = h.finish();
    }
    parts
}

/// Per-instance tag for request ids: wall-clock seconds mixed with a
/// process-wide instance counter, so two servers started in the same
/// second (common in tests) still mint distinct id streams.
fn boot_tag() -> u32 {
    static INSTANCE: AtomicU64 = AtomicU64::new(0);
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    (secs as u32)
        .wrapping_add((INSTANCE.fetch_add(1, Ordering::Relaxed) as u32).wrapping_mul(0x9E37_79B9))
}

impl Server {
    /// Starts the worker pool (and opens the persistent cache when
    /// configured), returning the handle plus the cache's startup scan
    /// report.
    ///
    /// # Errors
    ///
    /// I/O failures creating the cache directory tree. Corrupt cache
    /// *content* is quarantined, reported, and never fatal.
    pub fn start(cfg: ServerConfig) -> std::io::Result<(Server, OpenReport)> {
        let (cache, report) = match &cfg.cache_dir {
            Some(dir) => {
                let (c, r) = PersistentCache::open(dir, cfg.cache_cap_per_shard)?;
                (Some(c), r)
            }
            None => (None, OpenReport::default()),
        };
        let workers = cfg.workers.max(1);
        let registry = metrics::Registry::new();
        let counters = Counters::register(&registry);
        let inner = Arc::new(Inner {
            shards: (0..workers)
                .map(|_| ShardQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
                .collect(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters,
            registry,
            cache,
            inflight: Mutex::new(HashMap::new()),
            analysis: AnalysisCache::new(),
            service_ewma_us: AtomicU64::new(0),
            boot_tag: boot_tag(),
            req_seq: AtomicU64::new(0),
            cfg,
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flexcl-serve-{w}"))
                    .spawn(move || worker(&inner, w))
                    .expect("spawn worker")
            })
            .collect();
        Ok((Server { inner, workers: handles }, report))
    }

    /// Handles one raw frame end to end, introspection included: a
    /// `{"metrics": "json" | "text"}` frame is answered inline from the
    /// registry (bypassing admission, so it cannot be shed and does not
    /// perturb the counters it reports); anything else goes through
    /// [`Server::handle_frame`]. Both transports route through here.
    pub fn handle_frame_raw(&self, frame: &str) -> String {
        if let Some(reply) = self.try_metrics_frame(frame) {
            return reply;
        }
        self.handle_frame(frame).to_json()
    }

    /// Non-blocking [`Server::handle_frame_raw`]: `complete` receives
    /// the serialized response frame, possibly on another thread. This
    /// is the epoll transport's entry point — the event loop must never
    /// block on a sweep.
    pub fn handle_frame_raw_async(
        &self,
        frame: &str,
        complete: Box<dyn FnOnce(String) + Send + 'static>,
    ) {
        if let Some(reply) = self.try_metrics_frame(frame) {
            complete(reply);
            return;
        }
        self.handle_frame_async(frame, Box::new(move |r: Response| complete(r.to_json())));
    }

    /// Answers a metrics-introspection frame, or `None` when `frame` is
    /// not one (no top-level `metrics` key).
    fn try_metrics_frame(&self, frame: &str) -> Option<String> {
        // Cheap pre-filter: service frames never reach the JSON parser
        // twice unless they at least mention the key.
        if !frame.contains(r#""metrics""#) {
            return None;
        }
        let v = crate::json::parse(frame).ok()?;
        let mode = v.get("metrics")?.as_str().unwrap_or("json").to_string();
        Some(self.metrics_reply(&mode))
    }

    /// Renders the introspection snapshot: the server's own registry
    /// under `"server"` and the process-wide registry (trace drops,
    /// `dse.*`, `eval.*`) under `"process"`.
    pub fn metrics_reply(&self, mode: &str) -> String {
        let server = self.inner.registry.snapshot();
        let process = metrics::global().snapshot();
        let mut s = String::new();
        if mode == "text" {
            let mut text = String::new();
            for (scope, snap) in [("server", &server), ("process", &process)] {
                let _ = writeln!(text, "# scope {scope}");
                text.push_str(&snap.to_text());
            }
            s.push_str(r#"{"status":"ok","metrics_text":"#);
            crate::json::push_escaped(&mut s, &text);
            s.push('}');
        } else {
            let _ = write!(
                s,
                r#"{{"status":"ok","metrics":{{"server":{},"process":{}}}}}"#,
                server.to_json(),
                process.to_json()
            );
        }
        s
    }

    /// Handles one raw frame end to end: parse, admit, enqueue, wait for
    /// the worker's answer. Blocks the calling (connection) thread, not
    /// a worker; shed and malformed frames return without touching the
    /// queue. Every answer — ok, shed, deadline, malformed — carries the
    /// server-assigned `request_id` minted here.
    pub fn handle_frame(&self, frame: &str) -> Response {
        let (tx, rx) = mpsc::channel();
        self.handle_frame_async(frame, Box::new(move |r: Response| drop(tx.send(r))));
        rx.recv().unwrap_or_else(|_| shutdown_response("?"))
    }

    /// Non-blocking [`Server::handle_frame`]: parse, admit, enqueue, and
    /// return; `complete` receives the response when the sweep (or a
    /// coalesced fan-out) finishes. Immediate outcomes — malformed, shed
    /// — invoke `complete` before returning. The `serve.request` trace
    /// span closes at hand-off; worker-side spans still attach to it by
    /// id, so the tree shape is identical to the blocking path.
    pub fn handle_frame_async(&self, frame: &str, complete: Completion) {
        let rid = self.next_request_id();
        let mut span = trace::span("serve.request");
        span.attr_str("request_id", &rid);
        self.inner.counters.received.inc();
        match Request::parse(frame) {
            Ok(req) => {
                span.attr_str("id", &req.id);
                self.submit_async(
                    req,
                    Box::new(move |mut r: Response| {
                        r.set_request_id(&rid);
                        complete(r);
                    }),
                );
            }
            Err(e) => {
                self.inner.counters.malformed.inc();
                trace::event("serve.malformed");
                let mut r = Response::malformed(&e);
                span.attr_str("kind", r.kind());
                r.set_request_id(&rid);
                complete(r);
            }
        }
    }

    /// Mints the next server-assigned request id:
    /// `<instance tag>-<sequence>`.
    fn next_request_id(&self) -> String {
        let seq = self.inner.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:08x}-{seq:06}", self.inner.boot_tag)
    }

    /// Admits, degrades, shards and enqueues `req`, then waits for its
    /// response.
    pub fn submit(&self, req: Request) -> Response {
        let (tx, rx) = mpsc::channel();
        self.submit_async(req, Box::new(move |r: Response| drop(tx.send(r))));
        // A worker always answers (even on deadline), so a recv error
        // can only mean shutdown raced the job.
        rx.recv().unwrap_or_else(|_| shutdown_response("?"))
    }

    /// Non-blocking [`Server::submit`]: coalesce-or-admit, degrade,
    /// shard and enqueue `req`; `complete` receives the response when it
    /// is ready. Shed and coalesce decisions happen before returning.
    pub fn submit_async(&self, mut req: Request, complete: Completion) {
        let inner = &self.inner;
        // Ignored faults must not fragment the fingerprint space: clear
        // them up front so a faulted frame on a production server keys
        // (and caches, and coalesces) exactly like the clean request.
        if !inner.cfg.enable_testhooks {
            req.fault = None;
        }

        // Degradation ladder: one rung per `degrade_at` of queue depth
        // observed at admission time.
        let depth = inner.queued.load(Ordering::Relaxed);
        let mut grid_used = req.grid.clone();
        let mut degraded = 0u32;
        if let Some(rungs) = depth.checked_div(inner.cfg.degrade_at) {
            for _ in 0..rungs {
                match SweepGrid::coarser(&grid_used) {
                    Some(next) => {
                        grid_used = next.to_string();
                        degraded += 1;
                    }
                    None => break,
                }
            }
        }
        if degraded > 0 {
            inner.counters.degraded.inc();
            let mut d = trace::span("serve.degrade");
            d.attr_u64("rungs", u64::from(degraded));
            d.attr_str("grid_used", &grid_used);
        }

        let now = Instant::now();
        let deadline_ms = req.deadline_ms.unwrap_or(inner.cfg.default_deadline_ms);
        let deadline = now + Duration::from_millis(deadline_ms);
        let key = request_fingerprint(&req, &grid_used, inner.platform_tag());
        let family = request_family_fingerprint(&req, inner.platform_tag());

        // A faulted request (testhook deployments) neither leads nor
        // parks: its answer is not the clean answer, so sharing a sweep
        // in either direction would leak the fault across requests.
        let coalescible = req.fault.is_none();

        // Coalesce-or-admit, atomically with respect to other arrivals
        // and to fan-out: the in-flight table lock spans both decisions,
        // so a request either parks on a live entry (fan-out has not run
        // yet) or becomes/joins the queue — never lost between them.
        let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
        if coalescible {
            if let Some(entry) = inflight.get_mut(&key) {
                // Park on the executing sweep whatever the relative
                // deadlines: each waiter is re-checked against its own
                // deadline at fan-out, and the rare case where the
                // shared sweep dies at the *leader's* deadline while a
                // longer-deadlined waiter still has budget is answered
                // with a retryable `overloaded`, never a spurious
                // `deadline`. Cap the list so one hot key cannot hold
                // unbounded memory.
                if entry.waiters.len() < inner.cfg.queue_cap {
                    entry.waiters.push(Waiter {
                        id: req.id,
                        accepted: now,
                        deadline,
                        degraded,
                        complete,
                    });
                    drop(inflight);
                    inner.counters.coalesced.inc();
                    trace::event("serve.coalesced");
                    return;
                }
            }
        }

        // Admission: reserve a queue slot or shed. The compare-exchange
        // loop keeps the bound exact under concurrent arrivals. Holding
        // the in-flight lock here is fine — it is never taken around a
        // sweep, only around table operations.
        let mut cur = inner.queued.load(Ordering::Relaxed);
        loop {
            if cur >= inner.cfg.queue_cap {
                drop(inflight);
                inner.counters.shed.inc();
                trace::event("serve.shed");
                let retry = inner.retry_after_ms();
                complete(Response::from_error(
                    &req.id,
                    &FlexclError::Overloaded {
                        queue_depth: cur,
                        capacity: inner.cfg.queue_cap,
                        retry_after_ms: retry,
                    },
                ));
                return;
            }
            match inner.queued.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(n) => cur = n,
            }
        }
        // This job owns the key's in-flight entry unless another leader
        // already does (a duplicate that could not park above) or it is
        // faulted (its answer must not fan out to clean waiters).
        let leader = coalescible
            && match inflight.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => false,
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(InFlight { waiters: Vec::new() });
                    true
                }
            };
        inner.counters.inflight_keys.set(inflight.len() as i64);
        drop(inflight);

        inner.counters.queue_depth.add(1);
        let mut admit = trace::span("serve.admit");
        admit.attr_u64("depth", cur as u64);
        drop(admit);

        let shard = (key.0 as usize) % inner.shards.len();
        let job = Job {
            req,
            grid_used,
            degraded,
            deadline,
            accepted: now,
            key,
            family,
            leader,
            complete,
            span: trace::current_span_id(),
        };
        let sq = &inner.shards[shard];
        let mut q = sq.q.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(job);
        sq.cv.notify_one();
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.inner.counters;
        CounterSnapshot {
            received: c.received.get(),
            completed: c.completed.get(),
            shed: c.shed.get(),
            degraded: c.degraded.get(),
            deadline_expired: c.deadline_expired.get(),
            malformed: c.malformed.get(),
            failed: c.failed.get(),
            cache_hits: c.cache_hits.get(),
            cache_misses: c.cache_misses.get(),
            coalesced: c.coalesced.get(),
            near_miss: c.near_miss.get(),
            analysis_hits: c.analysis_hits.get(),
            analysis_misses: c.analysis_misses.get(),
        }
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed)
    }

    /// The persistent cache, when one is configured (tests use this to
    /// corrupt entries in place).
    #[doc(hidden)]
    pub fn cache(&self) -> Option<&PersistentCache> {
        self.inner.cache.as_ref()
    }

    /// Stops the workers and joins them. Jobs still queued are answered
    /// with an `overloaded` rejection by the draining workers before
    /// they exit.
    pub fn shutdown(mut self) -> CounterSnapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for sq in &self.inner.shards {
            sq.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.counters()
    }
}

impl Inner {
    fn platform_tag(&self) -> &str {
        &self.cfg.platform.name
    }

    /// Retry-after hint: expected queue drain time from the service-time
    /// EWMA, floored at 1 ms so clients always back off.
    fn retry_after_ms(&self) -> u64 {
        let ewma_us = self.service_ewma_us.load(Ordering::Relaxed) >> 4;
        let depth = self.queued.load(Ordering::Relaxed) as u64;
        let workers = self.shards.len() as u64;
        (ewma_us * (depth + 1) / workers / 1000).max(1)
    }

    fn observe_service(&self, elapsed: Duration) {
        let us = (elapsed.as_micros() as u64) << 4;
        // EWMA with α = 1/8 in ×16 fixed point; racy updates only blur
        // the hint.
        let old = self.service_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - (old >> 3) + (us >> 3) };
        self.service_ewma_us.store(new, Ordering::Relaxed);
    }
}

/// The rejection for a request that raced server shutdown.
fn shutdown_response(id: &str) -> Response {
    Response::Err {
        id: id.to_string(),
        kind: "overloaded".to_string(),
        message: "server shut down before the request was served".to_string(),
        retry_after_ms: None,
        request_id: String::new(),
    }
}

/// One worker: drain the owned shard, answer every job (and every
/// waiter parked on it).
fn worker(inner: &Inner, shard: usize) {
    let sq = &inner.shards[shard];
    loop {
        let job = {
            let mut q = sq.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = sq
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(job) = job else { return };
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        inner.counters.queue_depth.add(-1);
        let response = if inner.shutdown.load(Ordering::SeqCst) {
            Response::Err {
                id: job.req.id.clone(),
                kind: "overloaded".to_string(),
                message: "server is shutting down".to_string(),
                retry_after_ms: None,
                request_id: String::new(),
            }
        } else {
            serve_job(inner, &job)
        };
        finish_job(inner, job, response);
    }
}

/// Counts one answered request and feeds the latency histogram.
fn account(inner: &Inner, response: &Response, accepted: Instant) {
    match response {
        Response::Ok { .. } => inner.counters.completed.inc(),
        Response::Err { kind, .. } if kind == "deadline" => {
            inner.counters.deadline_expired.inc();
        }
        // Only a coalesced waiter can reach here with `overloaded` (a
        // live waiter whose shared sweep died at the leader's deadline);
        // the direct shed path counts itself before completing.
        Response::Err { kind, .. } if kind == "overloaded" => inner.counters.shed.inc(),
        Response::Err { .. } => inner.counters.failed.inc(),
    }
    inner.counters.service_us.record(accepted.elapsed().as_micros() as u64);
}

/// Builds one waiter's answer from the leader's: an expired waiter gets
/// its own typed `deadline` rejection; otherwise the leader's result is
/// re-addressed — same summary bytes, same grid and cache disposition,
/// the waiter's own identity, degradation count, timing, and the
/// `coalesced` marker. Non-deadline leader errors fan out re-addressed
/// too (they are deterministic properties of the shared request
/// content); a leader *deadline* rejection is the one result a
/// still-live waiter must not inherit — the waiter's own budget has not
/// run out, so it gets a retryable `overloaded` instead.
fn waiter_response(inner: &Inner, leader: &Response, w: &Waiter, now: Instant) -> Response {
    if now >= w.deadline {
        return Response::from_error(
            &w.id,
            &FlexclError::Deadline {
                elapsed_ms: w.accepted.elapsed().as_millis() as u64,
                detail: "deadline expired while coalesced on an in-flight sweep".to_string(),
                stats: Default::default(),
            },
        );
    }
    match leader {
        Response::Ok { summary, grid_used, cache, .. } => Response::Ok {
            id: w.id.clone(),
            summary: summary.clone(),
            degraded: w.degraded,
            grid_used: grid_used.clone(),
            cache: *cache,
            elapsed_ms: w.accepted.elapsed().as_millis() as u64,
            coalesced: true,
            request_id: String::new(),
        },
        Response::Err { kind, .. } if kind == "deadline" => Response::from_error(
            &w.id,
            &FlexclError::Overloaded {
                queue_depth: inner.queued.load(Ordering::Relaxed),
                capacity: inner.cfg.queue_cap,
                retry_after_ms: inner.retry_after_ms(),
            },
        ),
        Response::Err { kind, message, retry_after_ms, .. } => Response::Err {
            id: w.id.clone(),
            kind: kind.clone(),
            message: message.clone(),
            retry_after_ms: *retry_after_ms,
            request_id: String::new(),
        },
    }
}

/// Completes a job: remove its in-flight entry (leaders only), answer
/// the leader, fan the result out to every parked waiter. Waiters are
/// answered after their entry is unlinked, so a fresh identical arrival
/// starts a new sweep instead of parking on a finished one.
fn finish_job(inner: &Inner, job: Job, response: Response) {
    let waiters = if job.leader {
        let mut inflight = inner.inflight.lock().unwrap_or_else(|e| e.into_inner());
        let entry = inflight.remove(&job.key);
        inner.counters.inflight_keys.set(inflight.len() as i64);
        entry.map_or_else(Vec::new, |e| e.waiters)
    } else {
        Vec::new()
    };

    account(inner, &response, job.accepted);
    // Leader-only EWMA: a fanned-out answer is not a fresh observation
    // of compute cost, and letting near-zero waiter latencies drag the
    // average down would understate the retry-after hint.
    inner.observe_service(job.accepted.elapsed());

    let now = Instant::now();
    for w in waiters {
        let resp = waiter_response(inner, &response, &w, now);
        account(inner, &resp, w.accepted);
        (w.complete)(resp);
    }
    // The client may have given up; that is its right, not an error.
    (job.complete)(response);
}

/// Serves one admitted job: queued-deadline check, cache lookup,
/// compile, sweep under the cancellation token, persist.
fn serve_job(inner: &Inner, job: &Job) -> Response {
    let req = &job.req;
    // Worker-side root: explicit parent ties this back to the
    // connection thread's `serve.request` span, and keeping it open on
    // this thread's stack makes the pipeline spans below (frontend
    // parse, IR lowering, the sweep) implicit children.
    let mut exec_span = trace::span_with_parent("serve.exec", job.span);
    exec_span.attr_str("grid_used", &job.grid_used);
    let now = Instant::now();
    if now >= job.deadline {
        // Expired while queued: reject without burning compute on an
        // answer nobody is waiting for.
        trace::event("serve.deadline");
        return Response::from_error(
            &req.id,
            &FlexclError::Deadline {
                elapsed_ms: job.accepted.elapsed().as_millis() as u64,
                detail: "deadline expired while queued".to_string(),
                stats: Default::default(),
            },
        );
    }

    // submit_async cleared req.fault unless testhooks are enabled.
    let fault = req.fault;
    let key = job.key;

    // Cache lookup — skipped when a corruption fault is armed so the
    // request demonstrably computes and then damages its own entry.
    if fault != Some(RequestFault::CorruptCache) {
        if let Some(cache) = &inner.cache {
            if let Some(payload) = cache.get(key) {
                if let Ok(summary) =
                    SweepSummary::from_json(&String::from_utf8_lossy(&payload))
                {
                    inner.counters.cache_hits.inc();
                    trace::event("serve.cache_hit");
                    return Response::Ok {
                        id: req.id.clone(),
                        summary,
                        degraded: job.degraded,
                        grid_used: job.grid_used.clone(),
                        cache: CacheDisposition::Hit,
                        elapsed_ms: job.accepted.elapsed().as_millis() as u64,
                        coalesced: false,
                        request_id: String::new(),
                    };
                }
                // Decoded bytes that fail the protocol parse count as
                // corruption too; fall through to recompute.
            }
        }
    }
    inner.counters.cache_misses.inc();
    trace::event("serve.cache_miss");
    // A full-key miss whose family is resident is a near miss: some
    // other grid/objective of this kernel was served before, so the
    // sweep below should find its per-family analyses already settled
    // in the serve-scoped analysis cache.
    if inner.cache.as_ref().is_some_and(|c| c.family_present(job.family)) {
        inner.counters.near_miss.inc();
        trace::event("serve.near_miss");
    }

    let prepared = match workload::prepare(
        &req.src,
        req.kernel.as_deref(),
        req.global,
        req.synthesis,
    ) {
        Ok(p) => p,
        Err(e) => return Response::from_error(&req.id, &e),
    };

    let grid = SweepGrid::by_name(&job.grid_used).unwrap_or_default();
    let opts = DseOptions {
        threads: req.threads.clamp(1, inner.cfg.max_sweep_threads.max(1)),
        prune: req.prune,
        fuel: match fault {
            Some(RequestFault::Fuel) => {
                ProfileFuel { step_limit: 1, trace_limit: 1, ..ProfileFuel::default() }
            }
            _ => ProfileFuel::default(),
        },
        inject: match fault {
            Some(RequestFault::Panic) => Some(InjectedFault::AnalysisPanic),
            Some(RequestFault::EstimatePanic) => Some(InjectedFault::EstimatePanic(0)),
            _ => None,
        },
        reuse_analysis: inner.cfg.analysis_cache_entries > 0,
        analysis_cache_cap: inner.cfg.analysis_cache_entries.max(1),
        ..DseOptions::default()
    };
    let cancel = CancelToken::at(job.deadline);
    let result = match flexcl_core::explore_space_cached(
        &prepared.func,
        &inner.cfg.platform,
        &prepared.workload,
        &grid,
        opts,
        Some(&cancel),
        &inner.analysis,
    ) {
        Ok(r) => r,
        Err(e) => return Response::from_error(&req.id, &e),
    };
    inner.counters.analysis_hits.add(result.stats.analysis_cache_hits);
    inner.counters.analysis_misses.add(result.stats.analysis_cache_misses);

    // A sweep where nothing survived is a typed rejection, not an empty
    // success: surface the dominant failure kind from the diagnostics.
    if result.points.is_empty() && !result.diagnostics.is_clean() {
        let first = &result.diagnostics.failed[0];
        return Response::Err {
            id: req.id.clone(),
            kind: first.kind.to_string(),
            message: format!(
                "all {} candidates failed ({}); first: {}",
                result.diagnostics.failed.len(),
                result.diagnostics.summary(),
                first.message
            ),
            retry_after_ms: None,
            request_id: String::new(),
        };
    }

    let summary = SweepSummary::of(&result);
    if let Some(cache) = &inner.cache {
        // Persist best-effort: a full disk must not fail the request.
        let _ = cache.put(key, job.family, summary.to_json().as_bytes());
        if fault == Some(RequestFault::CorruptCache) {
            cache.corrupt_entry_for_test(key);
        }
    }
    Response::Ok {
        id: req.id.clone(),
        summary,
        degraded: job.degraded,
        grid_used: job.grid_used.clone(),
        cache: if inner.cache.is_some() { CacheDisposition::Miss } else { CacheDisposition::Off },
        elapsed_ms: job.accepted.elapsed().as_millis() as u64,
        coalesced: false,
        request_id: String::new(),
    }
}
