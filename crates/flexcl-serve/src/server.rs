//! The estimation server: a sharded thread pool with robustness as the
//! organizing principle.
//!
//! Every request passes four gates, in order:
//!
//! 1. **Admission** — the queue is bounded. A request arriving at a full
//!    queue is shed immediately with a typed `overloaded` rejection and
//!    a retry-after hint derived from observed service time; it never
//!    waits to fail.
//! 2. **Degradation** — under queue pressure (but below shedding) the
//!    requested [`SweepGrid`] is walked down the ladder
//!    `ultra → fine → standard`, one rung per `degrade_at` of queue
//!    depth. The response records how many rungs were applied, so a
//!    client always knows it got a degraded answer.
//! 3. **Deadline** — every request has one (its own or the server
//!    default). The sweep runs under a [`CancelToken`]; an expired
//!    deadline stops work at the next chunk-claim boundary and the
//!    client gets a typed `deadline` rejection carrying how far the
//!    sweep got. Requests that expire while still queued are rejected
//!    without doing any work at all.
//! 4. **Isolation** — panics, fuel exhaustion and cache corruption armed
//!    per-request (testhook deployments) or arising naturally are
//!    contained by the engine's typed-error backstops; one poisoned
//!    request can only ever fail itself.
//!
//! Requests shard by content fingerprint, so identical sources land on
//! the same worker and the same [`PersistentCache`] entries.

use crate::cache::{Key, OpenReport, PersistentCache};
use crate::protocol::{CacheDisposition, Request, RequestFault, Response, SweepSummary};
use crate::workload;
use flexcl_core::config::SweepGrid;
use flexcl_core::dse::testhook::InjectedFault;
use flexcl_core::{CancelToken, DseOptions, FlexclError, Platform, ProfileFuel};
use flexcl_obs::{metrics, trace};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (= queue shards).
    pub workers: usize,
    /// Bounded queue capacity across all shards; arrivals past it shed.
    pub queue_cap: usize,
    /// Queue depth per degradation rung: at `degrade_at` queued requests
    /// the grid drops one rung, at `2*degrade_at` two, and so on.
    pub degrade_at: usize,
    /// Deadline for requests that do not carry one, milliseconds.
    pub default_deadline_ms: u64,
    /// Directory for the persistent result cache; `None` serves
    /// compute-only.
    pub cache_dir: Option<PathBuf>,
    /// Per-shard entry cap of the persistent cache.
    pub cache_cap_per_shard: usize,
    /// Target platform for every sweep.
    pub platform: Platform,
    /// Honor per-request `fault` fields. Off by default: production
    /// traffic must not be able to arm faults.
    pub enable_testhooks: bool,
    /// Clamp on per-request sweep threads.
    pub max_sweep_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_cap: 64,
            degrade_at: 8,
            default_deadline_ms: 10_000,
            cache_dir: None,
            cache_cap_per_shard: 64,
            platform: Platform::virtex7_adm7v3(),
            enable_testhooks: false,
            max_sweep_threads: 4,
        }
    }
}

/// Monotonic service counters, readable while the server runs. Backed by
/// the server's own [`metrics::Registry`] instance, so the `metrics`
/// introspection frame and [`Server::counters`] read the same cells —
/// there is no mirrored state to drift.
#[derive(Debug)]
struct Counters {
    received: metrics::Counter,
    completed: metrics::Counter,
    shed: metrics::Counter,
    degraded: metrics::Counter,
    deadline_expired: metrics::Counter,
    malformed: metrics::Counter,
    failed: metrics::Counter,
    cache_hits: metrics::Counter,
    cache_misses: metrics::Counter,
    /// Requests queued right now (admission increments, pickup decrements).
    queue_depth: metrics::Gauge,
    /// Service time (queue wait + compute) per answered request, µs.
    service_us: metrics::Histogram,
}

impl Counters {
    fn register(r: &metrics::Registry) -> Counters {
        Counters {
            received: r.counter("serve.received"),
            completed: r.counter("serve.completed"),
            shed: r.counter("serve.shed"),
            degraded: r.counter("serve.degraded"),
            deadline_expired: r.counter("serve.deadline_expired"),
            malformed: r.counter("serve.malformed"),
            failed: r.counter("serve.failed"),
            cache_hits: r.counter("serve.cache_hits"),
            cache_misses: r.counter("serve.cache_misses"),
            queue_depth: r.gauge("serve.queue_depth"),
            service_us: r.histogram("serve.service_us"),
        }
    }
}

/// A point-in-time copy of the service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Frames received (well-formed or not).
    pub received: u64,
    /// Requests answered `ok`.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests answered from a coarser grid than asked.
    pub degraded: u64,
    /// Requests rejected at/past their deadline (queued or mid-sweep).
    pub deadline_expired: u64,
    /// Frames rejected as malformed.
    pub malformed: u64,
    /// Requests rejected with any other typed pipeline error.
    pub failed: u64,
    /// Persistent-cache hits.
    pub cache_hits: u64,
    /// Persistent-cache misses (including cache-off computes).
    pub cache_misses: u64,
}

struct Job {
    req: Request,
    grid_used: String,
    degraded: u32,
    deadline: Instant,
    accepted: Instant,
    reply: mpsc::Sender<Response>,
    /// Trace id of the `serve.request` span open on the connection
    /// thread, so worker-side spans attach to the same tree (0 when
    /// tracing is off).
    span: u64,
}

struct ShardQueue {
    q: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

struct Inner {
    cfg: ServerConfig,
    shards: Vec<ShardQueue>,
    queued: AtomicUsize,
    shutdown: AtomicBool,
    counters: Counters,
    /// Per-instance registry backing [`Counters`]; snapshotted whole by
    /// the `metrics` introspection frame.
    registry: metrics::Registry,
    cache: Option<PersistentCache>,
    /// EWMA of service time in microseconds (×16 fixed point), feeding
    /// the retry-after hint.
    service_ewma_us: AtomicU64,
    /// Instance tag baked into every request id, so ids from different
    /// server lifetimes never collide.
    boot_tag: u32,
    /// Per-frame sequence number behind the request ids.
    req_seq: AtomicU64,
}

/// A running server. Cloning the handle shares the instance; call
/// [`Server::shutdown`] on the last handle to stop the workers.
pub struct Server {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Content fingerprint of a request: everything that determines the
/// answer — source, kernel, geometry, grid actually swept, pruning, and
/// synthesis values — and nothing that does not (id, deadline, thread
/// count; sweeps are bit-identical across those by construction).
pub fn request_fingerprint(req: &Request, grid_used: &str, platform_tag: &str) -> Key {
    let mut parts = (0u64, 0u64);
    for (seed, out) in [(0x9E37_79B9u64, &mut parts.0), (0xC2B2_AE35u64, &mut parts.1)] {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        seed.hash(&mut h);
        req.src.hash(&mut h);
        req.kernel.hash(&mut h);
        req.global.hash(&mut h);
        grid_used.hash(&mut h);
        req.prune.hash(&mut h);
        req.synthesis.buf_elems.hash(&mut h);
        req.synthesis.scalar_int.hash(&mut h);
        req.synthesis.scalar_float.to_bits().hash(&mut h);
        platform_tag.hash(&mut h);
        *out = h.finish();
    }
    parts
}

/// Per-instance tag for request ids: wall-clock seconds mixed with a
/// process-wide instance counter, so two servers started in the same
/// second (common in tests) still mint distinct id streams.
fn boot_tag() -> u32 {
    static INSTANCE: AtomicU64 = AtomicU64::new(0);
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    (secs as u32)
        .wrapping_add((INSTANCE.fetch_add(1, Ordering::Relaxed) as u32).wrapping_mul(0x9E37_79B9))
}

impl Server {
    /// Starts the worker pool (and opens the persistent cache when
    /// configured), returning the handle plus the cache's startup scan
    /// report.
    ///
    /// # Errors
    ///
    /// I/O failures creating the cache directory tree. Corrupt cache
    /// *content* is quarantined, reported, and never fatal.
    pub fn start(cfg: ServerConfig) -> std::io::Result<(Server, OpenReport)> {
        let (cache, report) = match &cfg.cache_dir {
            Some(dir) => {
                let (c, r) = PersistentCache::open(dir, cfg.cache_cap_per_shard)?;
                (Some(c), r)
            }
            None => (None, OpenReport::default()),
        };
        let workers = cfg.workers.max(1);
        let registry = metrics::Registry::new();
        let counters = Counters::register(&registry);
        let inner = Arc::new(Inner {
            shards: (0..workers)
                .map(|_| ShardQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
                .collect(),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            counters,
            registry,
            cache,
            service_ewma_us: AtomicU64::new(0),
            boot_tag: boot_tag(),
            req_seq: AtomicU64::new(0),
            cfg,
        });
        let handles = (0..workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("flexcl-serve-{w}"))
                    .spawn(move || worker(&inner, w))
                    .expect("spawn worker")
            })
            .collect();
        Ok((Server { inner, workers: handles }, report))
    }

    /// Handles one raw frame end to end, introspection included: a
    /// `{"metrics": "json" | "text"}` frame is answered inline from the
    /// registry (bypassing admission, so it cannot be shed and does not
    /// perturb the counters it reports); anything else goes through
    /// [`Server::handle_frame`]. Both transports route through here.
    pub fn handle_frame_raw(&self, frame: &str) -> String {
        if let Some(reply) = self.try_metrics_frame(frame) {
            return reply;
        }
        self.handle_frame(frame).to_json()
    }

    /// Answers a metrics-introspection frame, or `None` when `frame` is
    /// not one (no top-level `metrics` key).
    fn try_metrics_frame(&self, frame: &str) -> Option<String> {
        // Cheap pre-filter: service frames never reach the JSON parser
        // twice unless they at least mention the key.
        if !frame.contains(r#""metrics""#) {
            return None;
        }
        let v = crate::json::parse(frame).ok()?;
        let mode = v.get("metrics")?.as_str().unwrap_or("json").to_string();
        Some(self.metrics_reply(&mode))
    }

    /// Renders the introspection snapshot: the server's own registry
    /// under `"server"` and the process-wide registry (trace drops,
    /// `dse.*`, `eval.*`) under `"process"`.
    pub fn metrics_reply(&self, mode: &str) -> String {
        let server = self.inner.registry.snapshot();
        let process = metrics::global().snapshot();
        let mut s = String::new();
        if mode == "text" {
            let mut text = String::new();
            for (scope, snap) in [("server", &server), ("process", &process)] {
                let _ = writeln!(text, "# scope {scope}");
                text.push_str(&snap.to_text());
            }
            s.push_str(r#"{"status":"ok","metrics_text":"#);
            crate::json::push_escaped(&mut s, &text);
            s.push('}');
        } else {
            let _ = write!(
                s,
                r#"{{"status":"ok","metrics":{{"server":{},"process":{}}}}}"#,
                server.to_json(),
                process.to_json()
            );
        }
        s
    }

    /// Handles one raw frame end to end: parse, admit, enqueue, wait for
    /// the worker's answer. Blocks the calling (connection) thread, not
    /// a worker; shed and malformed frames return without touching the
    /// queue. Every answer — ok, shed, deadline, malformed — carries the
    /// server-assigned `request_id` minted here.
    pub fn handle_frame(&self, frame: &str) -> Response {
        let rid = self.next_request_id();
        let mut span = trace::span("serve.request");
        span.attr_str("request_id", &rid);
        self.inner.counters.received.inc();
        let mut response = match Request::parse(frame) {
            Ok(req) => {
                span.attr_str("id", &req.id);
                self.submit(req)
            }
            Err(e) => {
                self.inner.counters.malformed.inc();
                trace::event("serve.malformed");
                Response::malformed(&e)
            }
        };
        span.attr_str("kind", response.kind());
        response.set_request_id(&rid);
        response
    }

    /// Mints the next server-assigned request id:
    /// `<instance tag>-<sequence>`.
    fn next_request_id(&self) -> String {
        let seq = self.inner.req_seq.fetch_add(1, Ordering::Relaxed) + 1;
        format!("{:08x}-{seq:06}", self.inner.boot_tag)
    }

    /// Admits, degrades, shards and enqueues `req`, then waits for its
    /// response.
    pub fn submit(&self, req: Request) -> Response {
        let inner = &self.inner;
        // Admission: reserve a queue slot or shed. The compare-exchange
        // loop keeps the bound exact under concurrent arrivals.
        let mut depth = inner.queued.load(Ordering::Relaxed);
        loop {
            if depth >= inner.cfg.queue_cap {
                inner.counters.shed.inc();
                trace::event("serve.shed");
                let retry = inner.retry_after_ms();
                return Response::from_error(
                    &req.id,
                    &FlexclError::Overloaded {
                        queue_depth: depth,
                        capacity: inner.cfg.queue_cap,
                        retry_after_ms: retry,
                    },
                );
            }
            match inner.queued.compare_exchange_weak(
                depth,
                depth + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(cur) => depth = cur,
            }
        }
        inner.counters.queue_depth.add(1);
        let mut admit = trace::span("serve.admit");
        admit.attr_u64("depth", depth as u64);
        drop(admit);

        // Degradation ladder: one rung per `degrade_at` of depth at
        // admission time.
        let mut grid_used = req.grid.clone();
        let mut degraded = 0u32;
        if inner.cfg.degrade_at > 0 {
            for _ in 0..depth / inner.cfg.degrade_at {
                match SweepGrid::coarser(&grid_used) {
                    Some(next) => {
                        grid_used = next.to_string();
                        degraded += 1;
                    }
                    None => break,
                }
            }
        }
        if degraded > 0 {
            inner.counters.degraded.inc();
            let mut d = trace::span("serve.degrade");
            d.attr_u64("rungs", u64::from(degraded));
            d.attr_str("grid_used", &grid_used);
        }

        let now = Instant::now();
        let deadline_ms = req.deadline_ms.unwrap_or(inner.cfg.default_deadline_ms);
        let shard = (request_fingerprint(&req, &grid_used, inner.platform_tag()).0 as usize)
            % inner.shards.len();
        let (tx, rx) = mpsc::channel();
        let job = Job {
            req,
            grid_used,
            degraded,
            deadline: now + Duration::from_millis(deadline_ms),
            accepted: now,
            reply: tx,
            span: trace::current_span_id(),
        };
        {
            let sq = &inner.shards[shard];
            let mut q = sq.q.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(job);
            sq.cv.notify_one();
        }
        // A worker always answers (even on deadline), so a recv error
        // can only mean shutdown raced the job.
        rx.recv().unwrap_or_else(|_| Response::Err {
            id: "?".to_string(),
            kind: "overloaded".to_string(),
            message: "server shut down before the request was served".to_string(),
            retry_after_ms: None,
            request_id: String::new(),
        })
    }

    /// Current counter values.
    pub fn counters(&self) -> CounterSnapshot {
        let c = &self.inner.counters;
        CounterSnapshot {
            received: c.received.get(),
            completed: c.completed.get(),
            shed: c.shed.get(),
            degraded: c.degraded.get(),
            deadline_expired: c.deadline_expired.get(),
            malformed: c.malformed.get(),
            failed: c.failed.get(),
            cache_hits: c.cache_hits.get(),
            cache_misses: c.cache_misses.get(),
        }
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed)
    }

    /// The persistent cache, when one is configured (tests use this to
    /// corrupt entries in place).
    #[doc(hidden)]
    pub fn cache(&self) -> Option<&PersistentCache> {
        self.inner.cache.as_ref()
    }

    /// Stops the workers and joins them. Jobs still queued are answered
    /// with an `overloaded` rejection by the draining workers before
    /// they exit.
    pub fn shutdown(mut self) -> CounterSnapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for sq in &self.inner.shards {
            sq.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.counters()
    }
}

impl Inner {
    fn platform_tag(&self) -> &str {
        &self.cfg.platform.name
    }

    /// Retry-after hint: expected queue drain time from the service-time
    /// EWMA, floored at 1 ms so clients always back off.
    fn retry_after_ms(&self) -> u64 {
        let ewma_us = self.service_ewma_us.load(Ordering::Relaxed) >> 4;
        let depth = self.queued.load(Ordering::Relaxed) as u64;
        let workers = self.shards.len() as u64;
        (ewma_us * (depth + 1) / workers / 1000).max(1)
    }

    fn observe_service(&self, elapsed: Duration) {
        let us = (elapsed.as_micros() as u64) << 4;
        // EWMA with α = 1/8 in ×16 fixed point; racy updates only blur
        // the hint.
        let old = self.service_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { old - (old >> 3) + (us >> 3) };
        self.service_ewma_us.store(new, Ordering::Relaxed);
    }
}

/// One worker: drain the owned shard, answer every job.
fn worker(inner: &Inner, shard: usize) {
    let sq = &inner.shards[shard];
    loop {
        let job = {
            let mut q = sq.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _) = sq
                    .cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        let Some(job) = job else { return };
        inner.queued.fetch_sub(1, Ordering::Relaxed);
        inner.counters.queue_depth.add(-1);
        let response = if inner.shutdown.load(Ordering::SeqCst) {
            Response::Err {
                id: job.req.id.clone(),
                kind: "overloaded".to_string(),
                message: "server is shutting down".to_string(),
                retry_after_ms: None,
                request_id: String::new(),
            }
        } else {
            serve_job(inner, &job)
        };
        match &response {
            Response::Ok { .. } => {
                inner.counters.completed.inc();
            }
            Response::Err { kind, .. } if kind == "deadline" => {
                inner.counters.deadline_expired.inc();
            }
            Response::Err { .. } => {
                inner.counters.failed.inc();
            }
        }
        let elapsed = job.accepted.elapsed();
        inner.counters.service_us.record(elapsed.as_micros() as u64);
        inner.observe_service(elapsed);
        // The client may have given up (dropped receiver); that is its
        // right, not an error.
        let _ = job.reply.send(response);
    }
}

/// Serves one admitted job: queued-deadline check, cache lookup,
/// compile, sweep under the cancellation token, persist.
fn serve_job(inner: &Inner, job: &Job) -> Response {
    let req = &job.req;
    // Worker-side root: explicit parent ties this back to the
    // connection thread's `serve.request` span, and keeping it open on
    // this thread's stack makes the pipeline spans below (frontend
    // parse, IR lowering, the sweep) implicit children.
    let mut exec_span = trace::span_with_parent("serve.exec", job.span);
    exec_span.attr_str("grid_used", &job.grid_used);
    let now = Instant::now();
    if now >= job.deadline {
        // Expired while queued: reject without burning compute on an
        // answer nobody is waiting for.
        trace::event("serve.deadline");
        return Response::from_error(
            &req.id,
            &FlexclError::Deadline {
                elapsed_ms: job.accepted.elapsed().as_millis() as u64,
                detail: "deadline expired while queued".to_string(),
                stats: Default::default(),
            },
        );
    }

    let fault = if inner.cfg.enable_testhooks { req.fault } else { None };
    let key = request_fingerprint(req, &job.grid_used, inner.platform_tag());

    // Cache lookup — skipped when a corruption fault is armed so the
    // request demonstrably computes and then damages its own entry.
    if fault != Some(RequestFault::CorruptCache) {
        if let Some(cache) = &inner.cache {
            if let Some(payload) = cache.get(key) {
                if let Ok(summary) =
                    SweepSummary::from_json(&String::from_utf8_lossy(&payload))
                {
                    inner.counters.cache_hits.inc();
                    trace::event("serve.cache_hit");
                    return Response::Ok {
                        id: req.id.clone(),
                        summary,
                        degraded: job.degraded,
                        grid_used: job.grid_used.clone(),
                        cache: CacheDisposition::Hit,
                        elapsed_ms: job.accepted.elapsed().as_millis() as u64,
                        request_id: String::new(),
                    };
                }
                // Decoded bytes that fail the protocol parse count as
                // corruption too; fall through to recompute.
            }
        }
    }
    inner.counters.cache_misses.inc();
    trace::event("serve.cache_miss");

    let prepared = match workload::prepare(
        &req.src,
        req.kernel.as_deref(),
        req.global,
        req.synthesis,
    ) {
        Ok(p) => p,
        Err(e) => return Response::from_error(&req.id, &e),
    };

    let grid = SweepGrid::by_name(&job.grid_used).unwrap_or_default();
    let opts = DseOptions {
        threads: req.threads.clamp(1, inner.cfg.max_sweep_threads.max(1)),
        prune: req.prune,
        fuel: match fault {
            Some(RequestFault::Fuel) => {
                ProfileFuel { step_limit: 1, trace_limit: 1, ..ProfileFuel::default() }
            }
            _ => ProfileFuel::default(),
        },
        inject: match fault {
            Some(RequestFault::Panic) => Some(InjectedFault::AnalysisPanic),
            Some(RequestFault::EstimatePanic) => Some(InjectedFault::EstimatePanic(0)),
            _ => None,
        },
        ..DseOptions::default()
    };
    let cancel = CancelToken::at(job.deadline);
    let result = match flexcl_core::explore_space_deadline(
        &prepared.func,
        &inner.cfg.platform,
        &prepared.workload,
        &grid,
        opts,
        &cancel,
    ) {
        Ok(r) => r,
        Err(e) => return Response::from_error(&req.id, &e),
    };

    // A sweep where nothing survived is a typed rejection, not an empty
    // success: surface the dominant failure kind from the diagnostics.
    if result.points.is_empty() && !result.diagnostics.is_clean() {
        let first = &result.diagnostics.failed[0];
        return Response::Err {
            id: req.id.clone(),
            kind: first.kind.to_string(),
            message: format!(
                "all {} candidates failed ({}); first: {}",
                result.diagnostics.failed.len(),
                result.diagnostics.summary(),
                first.message
            ),
            retry_after_ms: None,
            request_id: String::new(),
        };
    }

    let summary = SweepSummary::of(&result);
    if let Some(cache) = &inner.cache {
        // Persist best-effort: a full disk must not fail the request.
        let _ = cache.put(key, summary.to_json().as_bytes());
        if fault == Some(RequestFault::CorruptCache) {
            cache.corrupt_entry_for_test(key);
        }
    }
    Response::Ok {
        id: req.id.clone(),
        summary,
        degraded: job.degraded,
        grid_used: job.grid_used.clone(),
        cache: if inner.cache.is_some() { CacheDisposition::Miss } else { CacheDisposition::Off },
        elapsed_ms: job.accepted.elapsed().as_millis() as u64,
        request_id: String::new(),
    }
}
