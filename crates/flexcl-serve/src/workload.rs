//! Request compilation: OpenCL source → IR + synthesized workload.
//!
//! The server receives raw kernel source, so argument buffers must be
//! synthesized the same way the `flexcl` CLI does it: every pointer
//! parameter gets a buffer of small positive values, scalars get
//! caller-chosen defaults. Keeping this in one place means the offline
//! CLI, the server, and the bit-identicality tests all compile a request
//! to exactly the same [`Workload`] — the precondition for comparing a
//! served sweep against a direct [`flexcl_core::explore_space`] call.

use flexcl_core::{FlexclError, Workload};
use flexcl_frontend::types::Type;
use flexcl_interp::KernelArg;
use flexcl_ir::Function;

/// Hard ceiling on synthesized buffer length (elements per pointer
/// parameter). A hostile `global` or `buf_elems` cannot make one request
/// allocate unbounded memory; at 4 Mi f32 elements a buffer caps at
/// 16 MiB per vector lane.
pub const MAX_BUF_ELEMS: u64 = 1 << 22;

/// A compiled request: lowered kernel plus synthesized workload.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The lowered kernel body.
    pub func: Function,
    /// Synthesized arguments + NDRange.
    pub workload: Workload,
}

/// Knobs for workload synthesis, all optional on the wire.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisSpec {
    /// Elements per synthesized pointer buffer. Defaults to the global
    /// work size, clamped to [`MAX_BUF_ELEMS`].
    pub buf_elems: Option<u64>,
    /// Value for integer scalar parameters.
    pub scalar_int: i64,
    /// Value for float scalar parameters.
    pub scalar_float: f64,
}

impl Default for SynthesisSpec {
    fn default() -> Self {
        SynthesisSpec { buf_elems: None, scalar_int: 16, scalar_float: 1.0 }
    }
}

/// Parses `src`, lowers the selected kernel, and synthesizes a workload
/// for `global`.
///
/// With `kernel == None` the source must define exactly one kernel.
///
/// # Errors
///
/// [`FlexclError::Frontend`] for parse/check/lowering failures and
/// [`FlexclError::NoSuchKernel`] when the kernel name does not resolve —
/// the same typed kinds the sweep diagnostics use, so the server can
/// classify rejections without string matching.
pub fn prepare(
    src: &str,
    kernel: Option<&str>,
    global: (u64, u64),
    spec: SynthesisSpec,
) -> Result<Prepared, FlexclError> {
    let program = flexcl_frontend::parse_and_check(src)?;
    let k = match kernel {
        Some(name) => program
            .kernel(name)
            .ok_or_else(|| FlexclError::NoSuchKernel { name: name.to_string() })?,
        None if program.kernels.len() == 1 => &program.kernels[0],
        None => {
            let names: Vec<&str> = program.kernels.iter().map(|k| k.name.as_str()).collect();
            return Err(FlexclError::NoSuchKernel {
                name: format!("(unspecified; file defines: {})", names.join(", ")),
            });
        }
    };
    let func = flexcl_ir::lower_kernel(k)?;

    let total = global.0.saturating_mul(global.1).max(1);
    let buf_elems = spec.buf_elems.unwrap_or(total).clamp(1, MAX_BUF_ELEMS);
    let args: Vec<KernelArg> = func
        .params
        .iter()
        .map(|p| match &p.ty {
            Type::Pointer(elem, _) => {
                let lanes = u64::from(elem.lanes());
                if elem.is_float() {
                    KernelArg::FloatBuf(vec![1.0; (buf_elems * lanes) as usize])
                } else {
                    KernelArg::IntBuf(vec![1; (buf_elems * lanes) as usize])
                }
            }
            t if t.is_float() => KernelArg::Float(spec.scalar_float),
            _ => KernelArg::Int(spec.scalar_int),
        })
        .collect();
    Ok(Prepared { func, workload: Workload { args, global } })
}

#[cfg(test)]
mod tests {
    use super::*;

    const VADD: &str = "__kernel void vadd(__global float* a, __global float* b,
                                           __global float* c, int n) {
        int i = get_global_id(0);
        if (i < n) c[i] = a[i] + b[i];
    }";

    #[test]
    fn synthesizes_buffers_and_scalars() {
        let p = prepare(VADD, None, (1024, 1), SynthesisSpec::default()).expect("prepare");
        assert_eq!(p.workload.args.len(), 4);
        assert!(matches!(&p.workload.args[0], KernelArg::FloatBuf(b) if b.len() == 1024));
        assert!(matches!(p.workload.args[3], KernelArg::Int(16)));
        assert_eq!(p.workload.global, (1024, 1));
    }

    #[test]
    fn caps_buffer_length() {
        let spec = SynthesisSpec { buf_elems: Some(u64::MAX), ..SynthesisSpec::default() };
        let p = prepare(VADD, None, (64, 1), spec).expect("prepare");
        assert!(matches!(&p.workload.args[0], KernelArg::FloatBuf(b) if b.len() as u64 == MAX_BUF_ELEMS));
    }

    #[test]
    fn typed_errors_for_bad_source_and_bad_kernel() {
        use flexcl_core::ErrorKind;
        let e = prepare("not opencl", None, (64, 1), SynthesisSpec::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::Frontend);
        let e = prepare(VADD, Some("nope"), (64, 1), SynthesisSpec::default()).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::NoSuchKernel);
    }
}
