//! A minimal JSON reader/writer for the wire protocol.
//!
//! The workspace builds offline with no serde, so the protocol speaks
//! through this hand-rolled recursive-descent parser. It accepts strict
//! JSON (no comments, no trailing commas), bounds recursion depth so a
//! hostile `[[[[…` frame cannot blow the stack, and keeps numbers as
//! `f64` — every quantity the protocol carries (ids aside) fits the
//! 2⁵³ integer range exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Maximum nesting depth a frame may use. Deeper input is rejected as
/// malformed rather than recursed into.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2⁵³.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted) — the protocol never
    /// relies on member order, and sorting makes fingerprints stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly (no fraction, no overflow).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9.007_199_254_740_992e15).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected byte `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad keyword at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        let n: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
        if !n.is_finite() {
            return Err(format!("non-finite number `{text}`"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined; the protocol is ASCII-dominated.
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err("raw control byte in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "bad utf-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let v = parse(r#"{"id":"a","n":3,"f":1.5,"b":true,"xs":[1,2],"nul":null}"#).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("a"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("b"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nul"), Some(&Json::Null));
        let Json::Arr(xs) = v.get("xs").unwrap() else { panic!() };
        assert_eq!(xs.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{", "}", "{\"a\"}", "[1,]", "{\"a\":1,}", "tru", "\"\\q\"", "1 2", "nan", "1e999",
            "\"\\u12\"", "",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn bounds_nesting_depth() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let mut out = String::new();
        push_escaped(&mut out, "a\"b\\c\nd\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn exact_integers_round_trip_through_f64() {
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_992));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
