//! # flexcl-serve
//!
//! DSE-as-a-service: a long-running batch estimation server over the
//! `flexcl-core` sweep engine, built for hostile traffic.
//!
//! A request is OpenCL source + NDRange + a [`SweepGrid`] preset; the
//! answer is the sweep digest (point counts, best configuration, best
//! cycle count) — bit-identical to an offline
//! [`flexcl_core::explore_space`] call over the same inputs. Around that
//! core the crate layers the service-robustness mechanisms the engine
//! itself cannot provide:
//!
//! - **Deadlines** — every request runs under a
//!   [`flexcl_core::CancelToken`]; expiry stops the sweep at the next
//!   chunk-claim boundary with a typed `deadline` rejection.
//! - **Admission control** — a bounded queue sheds excess arrivals with
//!   a typed `overloaded` rejection and a retry-after hint; under
//!   pressure short of shedding, requests degrade down the
//!   `ultra → fine → standard` grid ladder, recorded per-response.
//! - **Crash-safe persistence** — results land in a checksummed,
//!   atomically-written, LRU-sharded disk cache
//!   ([`cache::PersistentCache`]) that quarantines corruption instead of
//!   serving or dying on it.
//! - **Fault isolation** — per-request injected panics, fuel exhaustion
//!   and cache corruption (testhook deployments) are contained to the
//!   poisoned request.
//!
//! Transports: newline-delimited JSON on stdin/stdout and length-prefixed
//! frames over TCP ([`net`]). The `serve` binary fronts both.
//!
//! [`SweepGrid`]: flexcl_core::config::SweepGrid

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod net;
pub mod protocol;
pub mod server;
pub mod workload;

pub use protocol::{Request, Response, SweepSummary};
pub use server::{CounterSnapshot, Server, ServerConfig};
