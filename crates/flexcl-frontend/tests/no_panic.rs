//! Property: the frontend (lexer → parser → sema) is total. Whatever bytes
//! arrive — binary garbage, token soup, or truncated kernels — it must
//! return `Ok` or a typed `FrontendError`, never panic and never hang.

use proptest::prelude::*;

/// Arbitrary bytes, lossily decoded: exercises the lexer's handling of
/// control characters, invalid UTF-8 replacement chars, and unterminated
/// constructs.
fn arb_bytes() -> BoxedStrategy<String> {
    proptest::collection::vec(any::<u8>(), 0..256)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Token soup drawn from the language's own vocabulary: far more likely to
/// get past the lexer and deep into the parser/sema than raw bytes.
fn arb_token_soup() -> BoxedStrategy<String> {
    let vocab: Vec<&'static str> = vec![
        "__kernel", "void", "k", "(", ")", "{", "}", "[", "]", ";", ",",
        "__global", "__local", "float", "int", "*", "a", "b", "i",
        "get_global_id", "get_local_id", "barrier", "CLK_LOCAL_MEM_FENCE",
        "for", "if", "else", "return", "=", "+", "-", "*", "/", "%", "<",
        ">", "==", "!=", "&&", "||", "0", "1", "42", "3.5f", "?", ":",
        "1e999", "0x", "'", "\"", "\\", "//", "/*", "*/",
    ];
    proptest::collection::vec(proptest::sample::select(vocab), 0..64)
        .prop_map(|toks| toks.join(" "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_bytes_never_panic(src in arb_bytes()) {
        let _ = flexcl_frontend::parse_and_check(&src);
    }

    #[test]
    fn token_soup_never_panics(soup in arb_token_soup()) {
        let _ = flexcl_frontend::parse_and_check(&soup);
        // Also wrapped in a kernel shell, so fragments reach statement
        // and expression parsing instead of dying at the signature.
        let wrapped = format!("__kernel void k(__global float* a) {{ {soup} }}");
        let _ = flexcl_frontend::parse_and_check(&wrapped);
    }
}
