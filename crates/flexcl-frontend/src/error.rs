//! Error types for the frontend.

use crate::token::Span;
use std::fmt;

/// Result alias used across the frontend.
pub type Result<T> = std::result::Result<T, FrontendError>;

/// Errors produced while lexing, parsing or analysing an OpenCL kernel.
#[derive(Debug, Clone, PartialEq)]
pub enum FrontendError {
    /// The lexer met malformed input.
    Lex {
        /// Human-readable description.
        message: String,
        /// Location of the offending text.
        span: Span,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Human-readable description.
        message: String,
        /// Location of the offending token.
        span: Span,
    },
    /// Semantic analysis rejected the program.
    Sema {
        /// Human-readable description.
        message: String,
        /// Location of the offending construct.
        span: Span,
    },
}

impl FrontendError {
    /// The source location the error refers to.
    pub fn span(&self) -> Span {
        match self {
            FrontendError::Lex { span, .. }
            | FrontendError::Parse { span, .. }
            | FrontendError::Sema { span, .. } => *span,
        }
    }

    /// The error message without the location prefix.
    pub fn message(&self) -> &str {
        match self {
            FrontendError::Lex { message, .. }
            | FrontendError::Parse { message, .. }
            | FrontendError::Sema { message, .. } => message,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex { message, span } => write!(f, "lex error at {span}: {message}"),
            FrontendError::Parse { message, span } => write!(f, "parse error at {span}: {message}"),
            FrontendError::Sema { message, span } => {
                write!(f, "semantic error at {span}: {message}")
            }
        }
    }
}

impl std::error::Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = FrontendError::Parse {
            message: "expected `;`".into(),
            span: Span::new(0, 1, 3, 7),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected `;`");
        assert_eq!(e.span().line, 3);
        assert_eq!(e.message(), "expected `;`");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontendError>();
    }
}
