//! Semantic analysis: scope resolution and type checking.
//!
//! [`analyze`] walks each kernel, resolves every name against lexical scopes,
//! fills the `ty` slot of every [`Expr`] in place, and rejects programs the
//! IR lowering cannot handle (unknown calls, non-scalar conditions, barriers
//! in expression position, writes to `__constant` memory, ...).

use crate::ast::*;
use crate::builtins;
use crate::error::{FrontendError, Result};
use crate::token::Span;
use crate::types::{AddressSpace, Scalar, Type};
use std::collections::HashMap;

/// Analyzes a parsed program in place.
///
/// On success every expression in the program carries its type and all name
/// references are known to resolve.
///
/// # Errors
///
/// Returns the first semantic error found.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), flexcl_frontend::FrontendError> {
/// let mut program = flexcl_frontend::parse(
///     "__kernel void scale(__global float* a, float f) {
///          int i = get_global_id(0);
///          a[i] = a[i] * f;
///      }",
/// )?;
/// flexcl_frontend::analyze(&mut program)?;
/// # Ok(())
/// # }
/// ```
pub fn analyze(program: &mut Program) -> Result<()> {
    for kernel in &mut program.kernels {
        Analyzer::new().check_kernel(kernel)?;
    }
    Ok(())
}

/// Convenience: parse + analyze in one call.
///
/// # Errors
///
/// Propagates lexical, syntactic and semantic errors.
pub fn parse_and_check(src: &str) -> Result<Program> {
    let mut span = flexcl_obs::span("frontend.parse");
    span.attr_u64("src_bytes", src.len() as u64);
    let mut p = crate::parser::parse(src)?;
    analyze(&mut p)?;
    span.attr_u64("kernels", p.kernels.len() as u64);
    Ok(p)
}

/// Maps predefined OpenCL constants (barrier flags) to their values.
fn opencl_constant(name: &str) -> Option<i64> {
    match name {
        "CLK_LOCAL_MEM_FENCE" => Some(1),
        "CLK_GLOBAL_MEM_FENCE" => Some(2),
        "MAXFLOAT" => None, // float constant; not foldable to int
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    ty: Type,
    writable: bool,
}

struct Analyzer {
    scopes: Vec<HashMap<String, VarInfo>>,
    loop_depth: u32,
}

impl Analyzer {
    fn new() -> Self {
        Analyzer { scopes: vec![HashMap::new()], loop_depth: 0 }
    }

    fn err(&self, message: impl Into<String>, span: Span) -> FrontendError {
        FrontendError::Sema { message: message.into(), span }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, info: VarInfo, span: Span) -> Result<()> {
        let top = self.scopes.last_mut().expect("at least one scope");
        if top.contains_key(name) {
            return Err(self.err(format!("`{name}` is already declared in this scope"), span));
        }
        top.insert(name.to_string(), info);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_kernel(&mut self, kernel: &mut KernelDef) -> Result<()> {
        for p in &kernel.params {
            let writable = match &p.ty {
                Type::Pointer(_, AddressSpace::Constant) => false,
                Type::Pointer(_, _) => true,
                _ => true, // scalar params are copied; writes affect the copy
            };
            if matches!(p.ty, Type::Void | Type::Array(_, _)) {
                return Err(self.err(
                    format!("parameter `{}` has unsupported type {}", p.name, p.ty),
                    p.span,
                ));
            }
            self.declare(&p.name, VarInfo { ty: p.ty.clone(), writable }, p.span)?;
        }
        self.check_block(&mut kernel.body)
    }

    fn check_block(&mut self, block: &mut Block) -> Result<()> {
        self.push_scope();
        let result = block.stmts.iter_mut().try_for_each(|s| self.check_stmt(s));
        self.pop_scope();
        result
    }

    fn check_stmt(&mut self, stmt: &mut Stmt) -> Result<()> {
        match stmt {
            Stmt::Decl(d) => self.check_decl(d),
            Stmt::Assign(a) => self.check_assign(a),
            Stmt::Expr(e) => {
                // Expression statements are only useful for barrier-like calls.
                let ty = self.check_expr(e)?;
                if let ExprKind::Call { name, .. } = &e.kind {
                    let _ = name;
                } else if ty != Type::Void {
                    // Value computed and dropped: legal C, pointless; accept.
                }
                Ok(())
            }
            Stmt::If(s) => {
                self.check_condition(&mut s.cond)?;
                self.check_block(&mut s.then_block)?;
                self.check_block(&mut s.else_block)
            }
            Stmt::For(s) => {
                self.push_scope();
                if let Some(init) = &mut s.init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = &mut s.cond {
                    self.check_condition(cond)?;
                }
                self.loop_depth += 1;
                let body = self.check_block(&mut s.body);
                self.loop_depth -= 1;
                body?;
                if let Some(step) = &mut s.step {
                    self.check_stmt(step)?;
                }
                self.pop_scope();
                Ok(())
            }
            Stmt::While(s) => {
                self.check_condition(&mut s.cond)?;
                self.loop_depth += 1;
                let r = self.check_block(&mut s.body);
                self.loop_depth -= 1;
                r
            }
            Stmt::DoWhile(s) => {
                self.loop_depth += 1;
                let r = self.check_block(&mut s.body);
                self.loop_depth -= 1;
                r?;
                self.check_condition(&mut s.cond)
            }
            Stmt::Return(value, span) => {
                if let Some(v) = value {
                    let ty = self.check_expr(v)?;
                    if ty != Type::Void {
                        return Err(
                            self.err("kernels return void; `return <expr>` is not allowed", *span)
                        );
                    }
                }
                Ok(())
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    Err(self.err("`break`/`continue` outside of a loop", *span))
                } else {
                    Ok(())
                }
            }
            Stmt::Block(b) => self.check_block(b),
        }
    }

    fn check_decl(&mut self, d: &mut DeclStmt) -> Result<()> {
        if d.ty == Type::Void {
            return Err(self.err(format!("cannot declare `{}` of type void", d.name), d.span));
        }
        if matches!(d.ty, Type::Array(_, _)) && d.init.is_some() {
            return Err(self.err("array declarations cannot have initialisers", d.span));
        }
        if d.space == AddressSpace::Local && !matches!(d.ty, Type::Array(_, _)) {
            return Err(self.err(
                "`__local` declarations inside kernels must be arrays",
                d.span,
            ));
        }
        if let Some(init) = &mut d.init {
            let init_ty = self.check_expr(init)?;
            self.require_convertible(&init_ty, &d.ty, init.span)?;
        }
        self.declare(
            &d.name,
            VarInfo { ty: d.ty.clone(), writable: true },
            d.span,
        )
    }

    fn check_assign(&mut self, a: &mut AssignStmt) -> Result<()> {
        let target_ty = self.check_lvalue(&mut a.target)?;
        let value_ty = self.check_expr(&mut a.value)?;
        if let Some(op) = a.op {
            // Compound assignment: target op value must type-check as binary.
            if op.is_comparison() {
                return Err(self.err("comparison operators cannot be compound-assigned", a.span));
            }
            if target_ty.element_scalar().is_none() {
                return Err(self.err(
                    format!("compound assignment needs arithmetic target, got {target_ty}"),
                    a.span,
                ));
            }
        }
        self.require_convertible(&value_ty, &target_ty, a.value.span)
    }

    fn check_lvalue(&mut self, lv: &mut LValue) -> Result<Type> {
        match lv {
            LValue::Var(name, span) => {
                let info = self
                    .lookup(name)
                    .ok_or_else(|| self.err(format!("unknown variable `{name}`"), *span))?
                    .clone();
                if !info.writable {
                    return Err(self.err(format!("`{name}` is read-only"), *span));
                }
                if matches!(info.ty, Type::Array(_, _)) {
                    return Err(self.err(format!("cannot assign to array `{name}`"), *span));
                }
                Ok(info.ty)
            }
            LValue::Index { base, index, span } => {
                let base_ty = self.check_expr(base)?;
                let index_ty = self.check_expr(index)?;
                if !index_ty.is_int() {
                    return Err(self.err(format!("index must be integer, got {index_ty}"), *span));
                }
                match &base_ty {
                    Type::Pointer(elem, space) => {
                        if *space == AddressSpace::Constant {
                            return Err(self.err("cannot write through `__constant` pointer", *span));
                        }
                        Ok((**elem).clone())
                    }
                    Type::Array(elem, _) => Ok((**elem).clone()),
                    other => {
                        Err(self.err(format!("cannot index into value of type {other}"), *span))
                    }
                }
            }
            LValue::Member { base, lane, span } => {
                let info = self
                    .lookup(base)
                    .ok_or_else(|| self.err(format!("unknown variable `{base}`"), *span))?
                    .clone();
                match &info.ty {
                    Type::Vector(s, n) if u32::from(*lane) < u32::from(*n) => {
                        Ok(Type::Scalar(*s))
                    }
                    Type::Vector(_, n) => Err(self.err(
                        format!("lane {lane} out of range for {n}-lane vector `{base}`"),
                        *span,
                    )),
                    other => {
                        Err(self.err(format!("`.{lane}` applied to non-vector type {other}"), *span))
                    }
                }
            }
        }
    }

    fn check_condition(&mut self, e: &mut Expr) -> Result<()> {
        let ty = self.check_expr(e)?;
        if ty.element_scalar().is_none() || ty.lanes() != 1 {
            return Err(self.err(format!("condition must be scalar, got {ty}"), e.span));
        }
        Ok(())
    }

    fn require_convertible(&self, from: &Type, to: &Type, span: Span) -> Result<()> {
        let compatible = match (from, to) {
            (a, b) if a == b => true,
            (Type::Scalar(_), Type::Scalar(_)) => true,
            (Type::Vector(_, a), Type::Vector(_, b)) => a == b,
            // Broadcasting a scalar into a vector (OpenCL allows this in init).
            (Type::Scalar(_), Type::Vector(_, _)) => true,
            (Type::Pointer(a, s1), Type::Pointer(b, s2)) => a == b && s1 == s2,
            _ => false,
        };
        if compatible {
            Ok(())
        } else {
            Err(self.err(format!("cannot convert {from} to {to}"), span))
        }
    }

    fn check_expr(&mut self, e: &mut Expr) -> Result<Type> {
        let ty = self.infer_expr(e)?;
        e.ty = Some(ty.clone());
        Ok(ty)
    }

    fn infer_expr(&mut self, e: &mut Expr) -> Result<Type> {
        let span = e.span;
        match &mut e.kind {
            ExprKind::IntLit(v) => {
                if i64::from(i32::MIN) <= *v && *v <= i64::from(i32::MAX) {
                    Ok(Type::int())
                } else {
                    Ok(Type::Scalar(Scalar::I64))
                }
            }
            ExprKind::FloatLit(_) => Ok(Type::float()),
            ExprKind::Var(name) => {
                // OpenCL barrier-flag constants are folded to integers.
                if let Some(v) = opencl_constant(name) {
                    e.kind = ExprKind::IntLit(v);
                    return Ok(Type::Scalar(Scalar::U32));
                }
                match self.lookup(name) {
                    Some(info) => Ok(info.ty.clone()),
                    None => Err(self.err(format!("unknown variable `{name}`"), span)),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                let op = *op;
                // Pointer arithmetic: ptr ± int.
                if lt.is_pointer() && rt.is_int() && matches!(op, BinOp::Add | BinOp::Sub) {
                    return Ok(lt);
                }
                if lt.is_pointer() || rt.is_pointer() {
                    if op.is_comparison() && lt == rt {
                        return Ok(Type::Scalar(Scalar::Bool));
                    }
                    return Err(self.err(
                        format!("operator `{op}` not supported on pointer operands"),
                        span,
                    ));
                }
                let (ls, rs) = match (lt.element_scalar(), rt.element_scalar()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => {
                        return Err(self.err(
                            format!("operator `{op}` needs arithmetic operands, got {lt} and {rt}"),
                            span,
                        ))
                    }
                };
                let lanes = match (lt.lanes(), rt.lanes()) {
                    (a, b) if a == b => a,
                    (1, b) => b,
                    (a, 1) => a,
                    (a, b) => {
                        return Err(self.err(
                            format!("vector lane mismatch: {a} vs {b} lanes"),
                            span,
                        ))
                    }
                };
                if matches!(op, BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl
                    | BinOp::Shr)
                    && (ls.is_float() || rs.is_float())
                {
                    return Err(self.err(format!("operator `{op}` requires integers"), span));
                }
                let unified = ls.unify(rs);
                let result = if op.is_comparison() {
                    Scalar::Bool
                } else if matches!(op, BinOp::Shl | BinOp::Shr) {
                    if ls == Scalar::Bool {
                        Scalar::I32
                    } else {
                        ls
                    }
                } else {
                    unified
                };
                Ok(if lanes > 1 { Type::Vector(result, lanes as u8) } else { Type::Scalar(result) })
            }
            ExprKind::Unary { op, expr } => {
                let t = self.check_expr(expr)?;
                let s = t.element_scalar().ok_or_else(|| {
                    self.err(format!("unary `{op}` needs arithmetic operand, got {t}"), span)
                })?;
                // C integer promotion: sub-int operands of `-` and `~`
                // promote to int (so `-(a < b)` is -1, not bool 1).
                let promoted = |s: Scalar, lanes: u32| {
                    let ps = if s.is_float() { s } else { s.unify(Scalar::I32) };
                    if lanes > 1 {
                        Type::Vector(ps, lanes as u8)
                    } else {
                        Type::Scalar(ps)
                    }
                };
                match op {
                    UnOp::Neg => Ok(promoted(s, t.lanes())),
                    UnOp::Not => Ok(Type::Scalar(Scalar::Bool)),
                    UnOp::BitNot => {
                        if s.is_float() {
                            Err(self.err("`~` requires an integer operand", span))
                        } else {
                            Ok(promoted(s, t.lanes()))
                        }
                    }
                }
            }
            ExprKind::Call { name, args } => {
                let builtin = builtins::resolve(name).ok_or_else(|| {
                    self.err(format!("unknown function `{name}` (only OpenCL builtins are supported)"), span)
                })?;
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args.iter_mut() {
                    arg_tys.push(self.check_expr(a)?);
                }
                // Barrier flags like CLK_LOCAL_MEM_FENCE are identifiers we do
                // not declare; tolerate unknown-variable errors for them by
                // special-casing before arg checking. Parser produced Var
                // nodes, so map those names to int constants here.
                builtins::check(&builtin, &arg_tys, span)
            }
            ExprKind::Index { base, index } => {
                let base_ty = self.check_expr(base)?;
                let index_ty = self.check_expr(index)?;
                if !index_ty.is_int() {
                    return Err(self.err(format!("index must be integer, got {index_ty}"), span));
                }
                match &base_ty {
                    Type::Pointer(elem, _) => Ok((**elem).clone()),
                    Type::Array(elem, _) => Ok((**elem).clone()),
                    other => {
                        Err(self.err(format!("cannot index into value of type {other}"), span))
                    }
                }
            }
            ExprKind::Member { base, lane } => {
                let base_ty = self.check_expr(base)?;
                match base_ty {
                    Type::Vector(s, n) if u32::from(*lane) < u32::from(n) => Ok(Type::Scalar(s)),
                    Type::Vector(_, n) => {
                        Err(self.err(format!("lane {lane} out of range for {n}-lane vector"), span))
                    }
                    other => {
                        Err(self.err(format!("`.{lane}` applied to non-vector type {other}"), span))
                    }
                }
            }
            ExprKind::Cast { ty, expr } => {
                let from = self.check_expr(expr)?;
                let ok = match (&from, &*ty) {
                    (Type::Scalar(_), Type::Scalar(_)) => true,
                    (Type::Vector(_, a), Type::Vector(_, b)) => a == b,
                    (Type::Scalar(_), Type::Vector(_, _)) => true, // splat
                    (Type::Pointer(_, _), Type::Pointer(_, _)) => true,
                    _ => false,
                };
                if !ok {
                    return Err(self.err(format!("cannot cast {from} to {ty}"), span));
                }
                Ok(ty.clone())
            }
            ExprKind::VectorLit { ty, elems } => {
                let Type::Vector(_, lanes) = ty else {
                    return Err(self.err("vector literal requires a vector type", span));
                };
                let lanes = usize::from(*lanes);
                if elems.len() != lanes && elems.len() != 1 {
                    return Err(self.err(
                        format!(
                            "vector literal has {} initialisers, expected {lanes} (or 1 to splat)",
                            elems.len()
                        ),
                        span,
                    ));
                }
                let ty = ty.clone();
                for e in elems.iter_mut() {
                    let et = self.check_expr(e)?;
                    if et.element_scalar().is_none() || et.lanes() != 1 {
                        return Err(self.err(
                            format!("vector literal initialisers must be scalar, got {et}"),
                            e.span,
                        ));
                    }
                }
                Ok(ty)
            }
            ExprKind::Ternary { cond, then_expr, else_expr } => {
                let ct = self.check_expr(cond)?;
                if ct.element_scalar().is_none() || ct.lanes() != 1 {
                    return Err(self.err(format!("ternary condition must be scalar, got {ct}"), span));
                }
                let tt = self.check_expr(then_expr)?;
                let et = self.check_expr(else_expr)?;
                match (tt.element_scalar(), et.element_scalar()) {
                    (Some(a), Some(b)) if tt.lanes() == et.lanes() => {
                        let s = a.unify(b);
                        Ok(if tt.lanes() > 1 {
                            Type::Vector(s, tt.lanes() as u8)
                        } else {
                            Type::Scalar(s)
                        })
                    }
                    _ if tt == et => Ok(tt),
                    _ => Err(self.err(format!("ternary branches disagree: {tt} vs {et}"), span)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<Program> {
        let mut p = parse(src)?;
        analyze(&mut p)?;
        Ok(p)
    }

    #[test]
    fn types_simple_kernel() {
        let p = check(
            "__kernel void add(__global int* a, __global int* b, int n) {
                int i = get_global_id(0);
                if (i < n) b[i] = a[i] + 1;
            }",
        )
        .expect("sema");
        let Stmt::Decl(d) = &p.kernels[0].body.stmts[0] else { panic!() };
        // get_global_id returns u32, assigned to int — allowed conversion.
        assert_eq!(d.init.as_ref().expect("init").ty, Some(Type::Scalar(Scalar::U32)));
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = check("__kernel void k(__global int* a) { a[0] = missing; }").unwrap_err();
        assert!(e.to_string().contains("unknown variable"));
    }

    #[test]
    fn rejects_unknown_function() {
        let e = check("__kernel void k(__global int* a) { a[0] = helper(1); }").unwrap_err();
        assert!(e.to_string().contains("unknown function"));
    }

    #[test]
    fn rejects_write_through_constant() {
        let e = check("__kernel void k(__constant int* a) { a[0] = 1; }").unwrap_err();
        assert!(e.to_string().contains("__constant"));
    }

    #[test]
    fn rejects_float_modulo() {
        let e = check("__kernel void k(__global float* a) { a[0] = 1.5f % 2.0f; }").unwrap_err();
        assert!(e.to_string().contains("requires integers"));
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = check("__kernel void k(__global int* a) { break; }").unwrap_err();
        assert!(e.to_string().contains("outside of a loop"));
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let e = check("__kernel void k(__global int* a) { int x = 1; int x = 2; }").unwrap_err();
        assert!(e.to_string().contains("already declared"));
    }

    #[test]
    fn pointer_arithmetic_types_as_pointer() {
        let p = check(
            "__kernel void k(__global float* a, int off) {
                __global float* p = a + off;
                p[0] = 1.0f;
            }",
        );
        assert!(p.is_ok(), "{p:?}");
    }

    #[test]
    fn shadowing_in_inner_scope_allowed() {
        assert!(check(
            "__kernel void k(__global int* a) {
                int x = 1;
                if (x > 0) { int y = x + 1; a[0] = y; }
                for (int i = 0; i < 4; i++) { int y = i; a[i] = y; }
            }"
        )
        .is_ok());
    }

    #[test]
    fn local_scalar_rejected() {
        let e = check("__kernel void k(__global int* a) { __local int x; }").unwrap_err();
        assert!(e.to_string().contains("must be arrays"));
    }

    #[test]
    fn comparison_yields_bool_then_int_context_ok() {
        assert!(check(
            "__kernel void k(__global int* a) {
                int i = get_global_id(0);
                int flag = i < 10;
                a[i] = flag;
            }"
        )
        .is_ok());
    }

    #[test]
    fn barrier_statement_accepted() {
        assert!(check(
            "__kernel void k(__global int* a, __local int* t) {
                int l = get_local_id(0);
                t[l] = a[l];
                barrier(1);
                a[l] = t[l];
            }"
        )
        .is_ok());
    }

    #[test]
    fn vector_lane_out_of_range() {
        let e = check(
            "__kernel void k(__global float4* a) { float4 v = a[0]; v.x = v.s7; a[0] = v; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn unary_minus_promotes_bool_to_int() {
        let p = check(
            "__kernel void k(__global int* a) {
                int i = get_global_id(0);
                a[i] = -(i < 10);
            }",
        )
        .expect("sema");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[1] else { panic!() };
        assert_eq!(asn.value.ty, Some(Type::int()), "C integer promotion");
    }

    #[test]
    fn clk_constants_fold() {
        assert!(check(
            "__kernel void k(__global int* a, __local int* t) {
                t[get_local_id(0)] = a[0];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[0] = t[0];
            }"
        )
        .is_ok());
    }
}
