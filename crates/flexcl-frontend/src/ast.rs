//! Abstract syntax tree for the OpenCL C subset.
//!
//! Expression nodes carry a `ty` slot that is `None` after parsing and filled
//! in by [`crate::sema::analyze`]; downstream consumers (IR lowering) may rely
//! on it being `Some` once semantic analysis has succeeded.

use crate::token::Span;
use crate::types::{AddressSpace, Type};
use std::fmt;

/// A parsed translation unit: one or more kernels.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Kernel definitions in source order.
    pub kernels: Vec<KernelDef>,
}

impl Program {
    /// Finds a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&KernelDef> {
        self.kernels.iter().find(|k| k.name == name)
    }
}

/// Source-level kernel attributes (SDAccel / OpenCL style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelAttr {
    /// `__attribute__((reqd_work_group_size(x, y, z)))`.
    ReqdWorkGroupSize(u32, u32, u32),
    /// `__attribute__((xcl_pipeline_workitems))` — enable work-item pipelining.
    XclPipelineWorkitems,
    /// `__attribute__((num_compute_units(n)))` — replicate the kernel CU.
    NumComputeUnits(u32),
    /// `__attribute__((num_processing_elements(n)))` — PE replication inside a CU.
    NumProcessingElements(u32),
}

/// A `__kernel` function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name.
    pub name: String,
    /// Formal parameters in declaration order.
    pub params: Vec<ParamDecl>,
    /// Kernel body.
    pub body: Block,
    /// Attributes attached to the definition.
    pub attrs: Vec<KernelAttr>,
    /// Location of the kernel header.
    pub span: Span,
}

impl KernelDef {
    /// Returns the required work-group size if declared via attribute.
    pub fn reqd_work_group_size(&self) -> Option<(u32, u32, u32)> {
        self.attrs.iter().find_map(|a| match a {
            KernelAttr::ReqdWorkGroupSize(x, y, z) => Some((*x, *y, *z)),
            _ => None,
        })
    }

    /// Whether work-item pipelining was requested in the source.
    pub fn pipeline_workitems(&self) -> bool {
        self.attrs.contains(&KernelAttr::XclPipelineWorkitems)
    }
}

/// A kernel formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Parameter type (pointers carry their address space).
    pub ty: Type,
    /// Location of the declaration.
    pub span: Span,
}

/// A `{ ... }` statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Block::default()
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local variable declaration, e.g. `__local float buf[64];`.
    Decl(DeclStmt),
    /// An assignment, e.g. `a[i] = x + 1;` or `sum += v;`.
    Assign(AssignStmt),
    /// An expression evaluated for effect, e.g. `barrier(CLK_LOCAL_MEM_FENCE);`.
    Expr(Expr),
    /// An `if`/`else`.
    If(IfStmt),
    /// A `for` loop.
    For(ForStmt),
    /// A `while` loop.
    While(WhileStmt),
    /// A `do { } while` loop.
    DoWhile(DoWhileStmt),
    /// `return;` or `return expr;`.
    Return(Option<Expr>, Span),
    /// `break;`.
    Break(Span),
    /// `continue;`.
    Continue(Span),
    /// A nested block.
    Block(Block),
}

impl Stmt {
    /// Location of the statement (approximate for blocks).
    pub fn span(&self) -> Span {
        match self {
            Stmt::Decl(d) => d.span,
            Stmt::Assign(a) => a.span,
            Stmt::Expr(e) => e.span,
            Stmt::If(s) => s.span,
            Stmt::For(s) => s.span,
            Stmt::While(s) => s.span,
            Stmt::DoWhile(s) => s.span,
            Stmt::Return(_, sp) | Stmt::Break(sp) | Stmt::Continue(sp) => *sp,
            Stmt::Block(b) => b.stmts.first().map(Stmt::span).unwrap_or_default(),
        }
    }
}

/// A local declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclStmt {
    /// Declared name.
    pub name: String,
    /// Declared type (arrays included).
    pub ty: Type,
    /// Address space (`__local`, `__private`, ...).
    pub space: AddressSpace,
    /// Optional initialiser.
    pub init: Option<Expr>,
    /// Location.
    pub span: Span,
}

/// Assignment operators: `=` is `None`, `+=` is `Some(Add)`, and so on.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignStmt {
    /// Where the value is stored.
    pub target: LValue,
    /// Compound-assignment operator, if any.
    pub op: Option<BinOp>,
    /// Right-hand side.
    pub value: Expr,
    /// Location.
    pub span: Span,
}

/// Assignable locations.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A plain variable: `x = ...`.
    Var(String, Span),
    /// An indexed store: `a[i] = ...` (base may itself be indexed for
    /// multi-dimensional local arrays lowered as nested indices).
    Index {
        /// The array or pointer expression.
        base: Box<Expr>,
        /// The element index.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// A vector lane store: `v.x = ...` / `v.s3 = ...`.
    Member {
        /// The vector variable name.
        base: String,
        /// Zero-based lane index.
        lane: u8,
        /// Location.
        span: Span,
    },
}

impl LValue {
    /// Location of the lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(_, sp) => *sp,
            LValue::Index { span, .. } | LValue::Member { span, .. } => *span,
        }
    }
}

/// An `if` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct IfStmt {
    /// Condition.
    pub cond: Expr,
    /// Taken when the condition is non-zero.
    pub then_block: Block,
    /// Taken otherwise (empty if there is no `else`).
    pub else_block: Block,
    /// Location.
    pub span: Span,
}

/// A `for` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ForStmt {
    /// Loop initialiser (a declaration or assignment).
    pub init: Option<Box<Stmt>>,
    /// Loop condition; `None` means `for(;;)`.
    pub cond: Option<Expr>,
    /// Loop step (an assignment).
    pub step: Option<Box<Stmt>>,
    /// Loop body.
    pub body: Block,
    /// `#pragma unroll N` factor attached to the loop, if any
    /// (`Some(0)` means full unroll).
    pub unroll: Option<u32>,
    /// Whether `#pragma pipeline` requested loop pipelining.
    pub pipeline: bool,
    /// Location.
    pub span: Span,
}

/// A `while` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct WhileStmt {
    /// Condition checked before each iteration.
    pub cond: Expr,
    /// Loop body.
    pub body: Block,
    /// Location.
    pub span: Span,
}

/// A `do/while` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct DoWhileStmt {
    /// Loop body, executed at least once.
    pub body: Block,
    /// Condition checked after each iteration.
    pub cond: Expr,
    /// Location.
    pub span: Span,
}

/// Binary operators, named after their C spellings.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    LogAnd,
    LogOr,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
}

impl BinOp {
    /// Whether the operator yields `bool`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        ) || matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::LogAnd => "&&",
            BinOp::LogOr => "||",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
    /// Bitwise complement `~x`.
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        f.write_str(s)
    }
}

/// An expression with its source span and (post-sema) type.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// Filled in by semantic analysis.
    pub ty: Option<Type>,
}

impl Expr {
    /// Creates an untyped expression.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span, ty: None }
    }

    /// The type assigned by sema.
    ///
    /// # Panics
    ///
    /// Panics if semantic analysis has not run on this expression.
    pub fn ty(&self) -> &Type {
        self.ty.as_ref().expect("expression not typed; run sema::analyze first")
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// A call to an OpenCL builtin (`get_global_id`, `sqrt`, `barrier`, ...).
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Array / pointer indexing `a[i]`.
    Index {
        /// Base array or pointer.
        base: Box<Expr>,
        /// Element index.
        index: Box<Expr>,
    },
    /// Vector lane read `v.x`, `v.s5`.
    Member {
        /// Base vector expression.
        base: Box<Expr>,
        /// Zero-based lane index.
        lane: u8,
    },
    /// C-style cast `(float)x`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Conditional expression `c ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then_expr: Box<Expr>,
        /// Value when false.
        else_expr: Box<Expr>,
    },
    /// OpenCL vector constructor `(float4)(a, b, c, d)`.
    VectorLit {
        /// The vector type being constructed.
        ty: Type,
        /// Lane initialisers (either one per lane, or a single value that
        /// splats to every lane).
        elems: Vec<Expr>,
    },
}

/// Parses a vector member suffix into a lane index.
///
/// Accepts the `x`/`y`/`z`/`w` shorthand and the `sN` / `sA`-`sF` forms.
pub fn member_lane(name: &str) -> Option<u8> {
    match name {
        "x" => Some(0),
        "y" => Some(1),
        "z" => Some(2),
        "w" => Some(3),
        _ => {
            let rest = name.strip_prefix('s').or_else(|| name.strip_prefix('S'))?;
            if rest.len() != 1 {
                return None;
            }
            let c = rest.chars().next()?;
            c.to_digit(16).map(|d| d as u8)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_lane_shorthand() {
        assert_eq!(member_lane("x"), Some(0));
        assert_eq!(member_lane("w"), Some(3));
        assert_eq!(member_lane("s0"), Some(0));
        assert_eq!(member_lane("sf"), Some(15));
        assert_eq!(member_lane("q"), None);
        assert_eq!(member_lane("s42"), None);
    }

    #[test]
    fn comparison_ops_are_boolean() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::LogAnd.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }

    #[test]
    #[should_panic(expected = "not typed")]
    fn untyped_expr_panics() {
        let e = Expr::new(ExprKind::IntLit(1), Span::default());
        let _ = e.ty();
    }
}
