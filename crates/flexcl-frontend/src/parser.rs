//! Recursive-descent parser for the OpenCL C subset.
//!
//! The grammar is a pragmatic subset of OpenCL C 1.2 covering the constructs
//! that appear in the Rodinia and PolyBench kernels: kernel definitions with
//! attributes, scalar/vector/pointer/array types with address-space
//! qualifiers, the usual statements (`if`, `for`, `while`, `do`,
//! declarations, assignments including compound and increment forms), and
//! C expressions with builtin calls.

use crate::ast::*;
use crate::error::{FrontendError, Result};
use crate::lexer::Lexer;
use crate::token::{Keyword, Punct, Span, Token, TokenKind};
use crate::types::{AddressSpace, Scalar, Type};

/// Parses `src` into a [`Program`].
///
/// This is the main entry point of the frontend; it runs the lexer and the
/// parser but *not* semantic analysis (see [`crate::sema::analyze`]).
///
/// # Errors
///
/// Returns a [`FrontendError`] describing the first lexical or syntactic
/// problem found.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), flexcl_frontend::FrontendError> {
/// let program = flexcl_frontend::parse(
///     "__kernel void add(__global int* a, __global int* b) {
///          int i = get_global_id(0);
///          b[i] = a[i] + 1;
///      }",
/// )?;
/// assert_eq!(program.kernels[0].name, "add");
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Program> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser::new(tokens).parse_program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Pragma text pending attachment to the next `for` loop.
    pending_unroll: Option<u32>,
    /// Loop-pipelining pragma pending attachment to the next `for` loop.
    pending_pipeline: bool,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, pending_unroll: None, pending_pipeline: false }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, p: Punct) -> bool {
        matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p)
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        matches!(self.peek_kind(), TokenKind::Keyword(q) if *q == k)
    }

    fn eat_punct(&mut self, p: Punct) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: Punct) -> Result<Span> {
        if self.at_punct(p) {
            Ok(self.bump().span)
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let sp = self.bump().span;
                Ok((name, sp))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn error(&self, message: impl Into<String>) -> FrontendError {
        FrontendError::Parse { message: message.into(), span: self.peek().span }
    }

    // ---------------------------------------------------------------- program

    fn parse_program(mut self) -> Result<Program> {
        let mut kernels = Vec::new();
        loop {
            // Swallow stray pragmas between kernels.
            while let TokenKind::Pragma(_) = self.peek_kind() {
                self.bump();
            }
            if matches!(self.peek_kind(), TokenKind::Eof) {
                break;
            }
            kernels.push(self.parse_kernel()?);
        }
        Ok(Program { kernels })
    }

    fn parse_kernel(&mut self) -> Result<KernelDef> {
        let start = self.peek().span;
        let mut attrs = Vec::new();
        let mut saw_kernel = false;
        loop {
            if self.eat_keyword(Keyword::Kernel) {
                saw_kernel = true;
            } else if self.at_keyword(Keyword::Attribute) {
                attrs.extend(self.parse_attribute()?);
            } else {
                break;
            }
        }
        if !saw_kernel {
            return Err(self.error("expected `__kernel` function definition"));
        }
        if !self.eat_keyword(Keyword::Void) {
            return Err(self.error("kernels must return `void`"));
        }
        let (name, _) = self.expect_ident()?;
        self.expect_punct(Punct::LParen)?;
        let mut params = Vec::new();
        if !self.at_punct(Punct::RParen) {
            loop {
                params.push(self.parse_param()?);
                if !self.eat_punct(Punct::Comma) {
                    break;
                }
            }
        }
        self.expect_punct(Punct::RParen)?;
        // Attributes may also follow the parameter list.
        while self.at_keyword(Keyword::Attribute) {
            attrs.extend(self.parse_attribute()?);
        }
        let body = self.parse_block()?;
        Ok(KernelDef { name, params, body, attrs, span: start })
    }

    fn parse_attribute(&mut self) -> Result<Vec<KernelAttr>> {
        // __attribute__ (( name(args...) [, name(args...)]* ))
        self.bump(); // __attribute__
        self.expect_punct(Punct::LParen)?;
        self.expect_punct(Punct::LParen)?;
        let mut attrs = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            let mut args = Vec::new();
            if self.eat_punct(Punct::LParen) {
                if !self.at_punct(Punct::RParen) {
                    loop {
                        match self.peek_kind().clone() {
                            TokenKind::IntLit(v) => {
                                self.bump();
                                args.push(v);
                            }
                            other => {
                                return Err(self.error(format!(
                                    "expected integer attribute argument, found {other}"
                                )))
                            }
                        }
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                }
                self.expect_punct(Punct::RParen)?;
            }
            let attr = match (name.as_str(), args.as_slice()) {
                ("reqd_work_group_size", [x, y, z]) => {
                    Some(KernelAttr::ReqdWorkGroupSize(*x as u32, *y as u32, *z as u32))
                }
                ("xcl_pipeline_workitems" | "work_item_pipeline", _) => {
                    Some(KernelAttr::XclPipelineWorkitems)
                }
                ("num_compute_units", [n]) => Some(KernelAttr::NumComputeUnits(*n as u32)),
                ("num_processing_elements" | "opencl_unroll_hint", [n]) => {
                    Some(KernelAttr::NumProcessingElements(*n as u32))
                }
                // Unknown attributes are ignored, as real toolchains do.
                _ => None,
            };
            attrs.extend(attr);
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::RParen)?;
        Ok(attrs)
    }

    fn parse_param(&mut self) -> Result<ParamDecl> {
        let start = self.peek().span;
        let (ty, _space) = self.parse_qualified_type()?;
        let (name, _) = self.expect_ident()?;
        // Trailing qualifiers after the name are not legal C; nothing to do.
        Ok(ParamDecl { name, ty, span: start })
    }

    // ------------------------------------------------------------------ types

    /// Returns true when the upcoming tokens start a type.
    fn at_type_start(&self) -> bool {
        match self.peek_kind() {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Void
                    | Keyword::Bool
                    | Keyword::Char
                    | Keyword::Uchar
                    | Keyword::Short
                    | Keyword::Ushort
                    | Keyword::Int
                    | Keyword::Uint
                    | Keyword::Long
                    | Keyword::Ulong
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Const
                    | Keyword::Global
                    | Keyword::Local
                    | Keyword::Constant
                    | Keyword::Private
                    | Keyword::Volatile
            ),
            TokenKind::Ident(name) => Type::from_name(name).is_some(),
            _ => false,
        }
    }

    /// Parses qualifiers + base type + pointer stars.
    fn parse_qualified_type(&mut self) -> Result<(Type, AddressSpace)> {
        let mut space = AddressSpace::Private;
        let mut space_explicit = false;
        loop {
            if self.eat_keyword(Keyword::Const) || self.eat_keyword(Keyword::Volatile) {
                continue;
            }
            if self.eat_keyword(Keyword::Global) {
                space = AddressSpace::Global;
                space_explicit = true;
            } else if self.eat_keyword(Keyword::Local) {
                space = AddressSpace::Local;
                space_explicit = true;
            } else if self.eat_keyword(Keyword::Constant) {
                space = AddressSpace::Constant;
                space_explicit = true;
            } else if self.eat_keyword(Keyword::Private) {
                space = AddressSpace::Private;
                space_explicit = true;
            } else {
                break;
            }
        }
        let base = self.parse_base_type()?;
        let mut ty = base;
        while self.at_punct(Punct::Star) {
            self.bump();
            while self.eat_keyword(Keyword::Restrict)
                || self.eat_keyword(Keyword::Const)
                || self.eat_keyword(Keyword::Volatile)
            {}
            let ptr_space = if space_explicit { space } else { AddressSpace::Global };
            ty = Type::Pointer(Box::new(ty), ptr_space);
        }
        Ok((ty, space))
    }

    fn parse_base_type(&mut self) -> Result<Type> {
        // `unsigned int`, `unsigned`, `signed char`, ...
        if self.eat_keyword(Keyword::Unsigned) {
            let s = match self.peek_kind() {
                TokenKind::Keyword(Keyword::Char) => {
                    self.bump();
                    Scalar::U8
                }
                TokenKind::Keyword(Keyword::Short) => {
                    self.bump();
                    Scalar::U16
                }
                TokenKind::Keyword(Keyword::Long) => {
                    self.bump();
                    Scalar::U64
                }
                TokenKind::Keyword(Keyword::Int) => {
                    self.bump();
                    Scalar::U32
                }
                _ => Scalar::U32,
            };
            return Ok(Type::Scalar(s));
        }
        if self.eat_keyword(Keyword::Signed) {
            let s = match self.peek_kind() {
                TokenKind::Keyword(Keyword::Char) => {
                    self.bump();
                    Scalar::I8
                }
                TokenKind::Keyword(Keyword::Short) => {
                    self.bump();
                    Scalar::I16
                }
                TokenKind::Keyword(Keyword::Long) => {
                    self.bump();
                    Scalar::I64
                }
                TokenKind::Keyword(Keyword::Int) => {
                    self.bump();
                    Scalar::I32
                }
                _ => Scalar::I32,
            };
            return Ok(Type::Scalar(s));
        }
        let kind = self.peek_kind().clone();
        match kind {
            TokenKind::Keyword(k) => {
                let ty = match k {
                    Keyword::Void => Type::Void,
                    Keyword::Bool => Type::Scalar(Scalar::Bool),
                    Keyword::Char => Type::Scalar(Scalar::I8),
                    Keyword::Uchar => Type::Scalar(Scalar::U8),
                    Keyword::Short => Type::Scalar(Scalar::I16),
                    Keyword::Ushort => Type::Scalar(Scalar::U16),
                    Keyword::Int => Type::Scalar(Scalar::I32),
                    Keyword::Uint | Keyword::SizeT => Type::Scalar(Scalar::U32),
                    Keyword::Long => Type::Scalar(Scalar::I64),
                    Keyword::Ulong => Type::Scalar(Scalar::U64),
                    Keyword::Float => Type::Scalar(Scalar::F32),
                    Keyword::Double => Type::Scalar(Scalar::F64),
                    _ => return Err(self.error(format!("expected type, found keyword `{k}`"))),
                };
                self.bump();
                Ok(ty)
            }
            TokenKind::Ident(name) => match Type::from_name(&name) {
                Some(ty) => {
                    self.bump();
                    Ok(ty)
                }
                None => Err(self.error(format!("unknown type name `{name}`"))),
            },
            other => Err(self.error(format!("expected type, found {other}"))),
        }
    }

    // ------------------------------------------------------------- statements

    fn parse_block(&mut self) -> Result<Block> {
        self.expect_punct(Punct::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at_punct(Punct::RBrace) {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.parse_stmt()?);
        }
        self.expect_punct(Punct::RBrace)?;
        Ok(Block { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        // Pragmas attach to the following loop.
        if let TokenKind::Pragma(text) = self.peek_kind().clone() {
            self.bump();
            if let Some(u) = parse_unroll_pragma(&text) {
                self.pending_unroll = Some(u);
            } else if parse_pipeline_pragma(&text) {
                self.pending_pipeline = true;
            }
            return self.parse_stmt();
        }
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::Punct(Punct::LBrace) => Ok(Stmt::Block(self.parse_block()?)),
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Ok(Stmt::Block(Block::new()))
            }
            TokenKind::Keyword(Keyword::If) => self.parse_if(),
            TokenKind::Keyword(Keyword::For) => self.parse_for(),
            TokenKind::Keyword(Keyword::While) => self.parse_while(),
            TokenKind::Keyword(Keyword::Do) => self.parse_do_while(),
            TokenKind::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.at_punct(Punct::Semi) { None } else { Some(self.parse_expr()?) };
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Return(value, span))
            }
            TokenKind::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_punct(Punct::Semi)?;
                Ok(Stmt::Continue(span))
            }
            _ if self.at_type_start() => {
                let stmt = self.parse_decl()?;
                self.expect_punct(Punct::Semi)?;
                Ok(stmt)
            }
            _ => {
                let stmt = self.parse_simple_stmt()?;
                self.expect_punct(Punct::Semi)?;
                Ok(stmt)
            }
        }
    }

    /// A declaration without the trailing `;` (shared with `for` initialisers).
    fn parse_decl(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        let (base_ty, space) = self.parse_qualified_type()?;
        let mut decls: Vec<DeclStmt> = Vec::new();
        loop {
            let (name, _) = self.expect_ident()?;
            // Array suffixes.
            let mut dims = Vec::new();
            while self.eat_punct(Punct::LBracket) {
                match self.peek_kind().clone() {
                    TokenKind::IntLit(v) if v > 0 => {
                        self.bump();
                        dims.push(v as usize);
                    }
                    other => {
                        return Err(self.error(format!(
                            "array dimensions must be positive integer constants, found {other}"
                        )))
                    }
                }
                self.expect_punct(Punct::RBracket)?;
            }
            let mut ty = base_ty.clone();
            for d in dims.iter().rev() {
                ty = Type::Array(Box::new(ty), *d);
            }
            let init = if self.eat_punct(Punct::Eq) { Some(self.parse_expr()?) } else { None };
            decls.push(DeclStmt { name, ty, space, init, span });
            if !self.eat_punct(Punct::Comma) {
                break;
            }
        }
        if decls.len() == 1 {
            Ok(Stmt::Decl(decls.pop().expect("one decl")))
        } else {
            Ok(Stmt::Block(Block { stmts: decls.into_iter().map(Stmt::Decl).collect() }))
        }
    }

    /// Assignment / expression / increment statement without the trailing `;`.
    fn parse_simple_stmt(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        // Prefix increment/decrement.
        if self.at_punct(Punct::PlusPlus) || self.at_punct(Punct::MinusMinus) {
            let op = if self.eat_punct(Punct::PlusPlus) { BinOp::Add } else {
                self.bump();
                BinOp::Sub
            };
            let expr = self.parse_unary()?;
            let target = self.expr_to_lvalue(expr)?;
            let one = Expr::new(ExprKind::IntLit(1), span);
            return Ok(Stmt::Assign(AssignStmt { target, op: Some(op), value: one, span }));
        }
        let expr = self.parse_expr()?;
        // Postfix increment/decrement.
        if self.at_punct(Punct::PlusPlus) || self.at_punct(Punct::MinusMinus) {
            let op = if self.eat_punct(Punct::PlusPlus) { BinOp::Add } else {
                self.bump();
                BinOp::Sub
            };
            let target = self.expr_to_lvalue(expr)?;
            let one = Expr::new(ExprKind::IntLit(1), span);
            return Ok(Stmt::Assign(AssignStmt { target, op: Some(op), value: one, span }));
        }
        // Assignment operators.
        let assign_op = match self.peek_kind() {
            TokenKind::Punct(Punct::Eq) => Some(None),
            TokenKind::Punct(Punct::PlusEq) => Some(Some(BinOp::Add)),
            TokenKind::Punct(Punct::MinusEq) => Some(Some(BinOp::Sub)),
            TokenKind::Punct(Punct::StarEq) => Some(Some(BinOp::Mul)),
            TokenKind::Punct(Punct::SlashEq) => Some(Some(BinOp::Div)),
            TokenKind::Punct(Punct::PercentEq) => Some(Some(BinOp::Rem)),
            TokenKind::Punct(Punct::AmpEq) => Some(Some(BinOp::And)),
            TokenKind::Punct(Punct::PipeEq) => Some(Some(BinOp::Or)),
            TokenKind::Punct(Punct::CaretEq) => Some(Some(BinOp::Xor)),
            TokenKind::Punct(Punct::ShlEq) => Some(Some(BinOp::Shl)),
            TokenKind::Punct(Punct::ShrEq) => Some(Some(BinOp::Shr)),
            _ => None,
        };
        if let Some(op) = assign_op {
            self.bump();
            let value = self.parse_expr()?;
            let target = self.expr_to_lvalue(expr)?;
            return Ok(Stmt::Assign(AssignStmt { target, op, value, span }));
        }
        Ok(Stmt::Expr(expr))
    }

    fn expr_to_lvalue(&self, expr: Expr) -> Result<LValue> {
        let span = expr.span;
        match expr.kind {
            ExprKind::Var(name) => Ok(LValue::Var(name, span)),
            ExprKind::Index { base, index } => Ok(LValue::Index { base, index, span }),
            ExprKind::Member { base, lane } => match base.kind {
                ExprKind::Var(name) => Ok(LValue::Member { base: name, lane, span }),
                _ => Err(FrontendError::Parse {
                    message: "vector lane assignment requires a named vector".into(),
                    span,
                }),
            },
            _ => Err(FrontendError::Parse {
                message: "expression is not assignable".into(),
                span,
            }),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        self.bump(); // if
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let then_block = self.parse_stmt_as_block()?;
        let else_block = if self.eat_keyword(Keyword::Else) {
            self.parse_stmt_as_block()?
        } else {
            Block::new()
        };
        Ok(Stmt::If(IfStmt { cond, then_block, else_block, span }))
    }

    fn parse_stmt_as_block(&mut self) -> Result<Block> {
        if self.at_punct(Punct::LBrace) {
            self.parse_block()
        } else {
            let stmt = self.parse_stmt()?;
            Ok(Block { stmts: vec![stmt] })
        }
    }

    fn parse_for(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        let unroll = self.pending_unroll.take();
        let pipeline = std::mem::take(&mut self.pending_pipeline);
        self.bump(); // for
        self.expect_punct(Punct::LParen)?;
        let init = if self.at_punct(Punct::Semi) {
            None
        } else if self.at_type_start() {
            Some(Box::new(self.parse_decl()?))
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect_punct(Punct::Semi)?;
        let cond = if self.at_punct(Punct::Semi) { None } else { Some(self.parse_expr()?) };
        self.expect_punct(Punct::Semi)?;
        let step = if self.at_punct(Punct::RParen) {
            None
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::For(ForStmt { init, cond, step, body, unroll, pipeline, span }))
    }

    fn parse_while(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        self.bump(); // while
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::While(WhileStmt { cond, body, span }))
    }

    fn parse_do_while(&mut self) -> Result<Stmt> {
        let span = self.peek().span;
        self.bump(); // do
        let body = self.parse_stmt_as_block()?;
        if !self.eat_keyword(Keyword::While) {
            return Err(self.error("expected `while` after `do` body"));
        }
        self.expect_punct(Punct::LParen)?;
        let cond = self.parse_expr()?;
        self.expect_punct(Punct::RParen)?;
        self.expect_punct(Punct::Semi)?;
        Ok(Stmt::DoWhile(DoWhileStmt { body, cond, span }))
    }

    // ------------------------------------------------------------ expressions

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Result<Expr> {
        let cond = self.parse_binary(0)?;
        if self.eat_punct(Punct::Question) {
            let then_expr = self.parse_expr()?;
            self.expect_punct(Punct::Colon)?;
            let else_expr = self.parse_ternary()?;
            let span = cond.span.merge(else_expr.span);
            Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_expr: Box::new(then_expr),
                    else_expr: Box::new(else_expr),
                },
                span,
            ))
        } else {
            Ok(cond)
        }
    }

    fn binop_at(&self) -> Option<(BinOp, u8)> {
        let p = match self.peek_kind() {
            TokenKind::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            Punct::PipePipe => (BinOp::LogOr, 1),
            Punct::AmpAmp => (BinOp::LogAnd, 2),
            Punct::Pipe => (BinOp::Or, 3),
            Punct::Caret => (BinOp::Xor, 4),
            Punct::Amp => (BinOp::And, 5),
            Punct::EqEq => (BinOp::Eq, 6),
            Punct::Ne => (BinOp::Ne, 6),
            Punct::Lt => (BinOp::Lt, 7),
            Punct::Gt => (BinOp::Gt, 7),
            Punct::Le => (BinOp::Le, 7),
            Punct::Ge => (BinOp::Ge, 7),
            Punct::Shl => (BinOp::Shl, 8),
            Punct::Shr => (BinOp::Shr, 8),
            Punct::Plus => (BinOp::Add, 9),
            Punct::Minus => (BinOp::Sub, 9),
            Punct::Star => (BinOp::Mul, 10),
            Punct::Slash => (BinOp::Div, 10),
            Punct::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr::new(ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }, span);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let span = self.peek().span;
        if self.eat_punct(Punct::Minus) {
            let e = self.parse_unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(ExprKind::Unary { op: UnOp::Neg, expr: Box::new(e) }, sp));
        }
        if self.eat_punct(Punct::Plus) {
            return self.parse_unary();
        }
        if self.eat_punct(Punct::Bang) {
            let e = self.parse_unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(ExprKind::Unary { op: UnOp::Not, expr: Box::new(e) }, sp));
        }
        if self.eat_punct(Punct::Tilde) {
            let e = self.parse_unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(ExprKind::Unary { op: UnOp::BitNot, expr: Box::new(e) }, sp));
        }
        // Cast: `(` type `)` unary — only when the parenthesis encloses a
        // type. `(float4)(a, b, c, d)` is OpenCL's vector constructor.
        if self.at_punct(Punct::LParen) && self.cast_lookahead() {
            self.bump(); // (
            let (ty, _) = self.parse_qualified_type()?;
            self.expect_punct(Punct::RParen)?;
            if matches!(ty, Type::Vector(_, _)) && self.at_punct(Punct::LParen) {
                // Peek: a vector literal has a comma at depth 1; a plain
                // parenthesised operand does not.
                if self.vector_literal_lookahead() {
                    self.bump(); // (
                    let mut elems = Vec::new();
                    loop {
                        elems.push(self.parse_expr()?);
                        if !self.eat_punct(Punct::Comma) {
                            break;
                        }
                    }
                    let close = self.expect_punct(Punct::RParen)?;
                    let sp = span.merge(close);
                    return Ok(Expr::new(ExprKind::VectorLit { ty, elems }, sp));
                }
            }
            let e = self.parse_unary()?;
            let sp = span.merge(e.span);
            return Ok(Expr::new(ExprKind::Cast { ty, expr: Box::new(e) }, sp));
        }
        self.parse_postfix()
    }

    /// Checks whether the parenthesis at the cursor opens a multi-element
    /// vector literal (i.e. contains a comma at nesting depth 1).
    fn vector_literal_lookahead(&self) -> bool {
        let mut depth = 0usize;
        for i in 0..4096 {
            match self.peek_ahead(i) {
                TokenKind::Punct(Punct::LParen) | TokenKind::Punct(Punct::LBracket) => {
                    depth += 1;
                }
                TokenKind::Punct(Punct::RParen) | TokenKind::Punct(Punct::RBracket) => {
                    if depth <= 1 {
                        return false; // closed before any top-level comma
                    }
                    depth -= 1;
                }
                TokenKind::Punct(Punct::Comma) if depth == 1 => return true,
                TokenKind::Eof => return false,
                _ => {}
            }
        }
        false
    }

    /// Checks whether `( ... )` at the cursor is a cast rather than grouping.
    fn cast_lookahead(&self) -> bool {
        match self.peek_ahead(1) {
            TokenKind::Keyword(k) => matches!(
                k,
                Keyword::Bool
                    | Keyword::Char
                    | Keyword::Uchar
                    | Keyword::Short
                    | Keyword::Ushort
                    | Keyword::Int
                    | Keyword::Uint
                    | Keyword::Long
                    | Keyword::Ulong
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::SizeT
                    | Keyword::Unsigned
                    | Keyword::Signed
                    | Keyword::Global
                    | Keyword::Local
                    | Keyword::Constant
            ),
            TokenKind::Ident(name) => {
                Type::from_name(name).is_some()
                    && matches!(self.peek_ahead(2), TokenKind::Punct(Punct::RParen))
            }
            _ => false,
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut expr = self.parse_primary()?;
        loop {
            if self.eat_punct(Punct::LBracket) {
                let index = self.parse_expr()?;
                let close = self.expect_punct(Punct::RBracket)?;
                let span = expr.span.merge(close);
                expr = Expr::new(
                    ExprKind::Index { base: Box::new(expr), index: Box::new(index) },
                    span,
                );
            } else if self.at_punct(Punct::Dot) {
                self.bump();
                let (member, msp) = self.expect_ident()?;
                let lane = member_lane(&member).ok_or_else(|| FrontendError::Parse {
                    message: format!("unknown vector member `.{member}`"),
                    span: msp,
                })?;
                let span = expr.span.merge(msp);
                expr = Expr::new(ExprKind::Member { base: Box::new(expr), lane }, span);
            } else {
                break;
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let span = self.peek().span;
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), span))
            }
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), span))
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect_punct(Punct::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat_punct(Punct::LParen) {
                    let mut args = Vec::new();
                    if !self.at_punct(Punct::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_punct(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    let close = self.expect_punct(Punct::RParen)?;
                    Ok(Expr::new(ExprKind::Call { name, args }, span.merge(close)))
                } else {
                    Ok(Expr::new(ExprKind::Var(name), span))
                }
            }
            TokenKind::Keyword(Keyword::Sizeof) => {
                self.bump();
                self.expect_punct(Punct::LParen)?;
                let (ty, _) = self.parse_qualified_type()?;
                let close = self.expect_punct(Punct::RParen)?;
                let bytes = ty.bytes().unwrap_or(0) as i64;
                Ok(Expr::new(ExprKind::IntLit(bytes), span.merge(close)))
            }
            other => Err(self.error(format!("expected expression, found {other}"))),
        }
    }
}

/// Parses `unroll` / `unroll N` pragma text.
fn parse_unroll_pragma(text: &str) -> Option<u32> {
    let mut it = text.split_whitespace();
    if it.next()? != "unroll" {
        return None;
    }
    match it.next() {
        Some(n) => n.parse().ok(),
        None => Some(0), // full unroll
    }
}

/// Recognises `#pragma pipeline` (Vivado-HLS style loop pipelining).
fn parse_pipeline_pragma(text: &str) -> bool {
    matches!(text.split_whitespace().next(), Some("pipeline" | "PIPELINE" | "HLS"))
        && !text.contains("unroll")
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD: &str = "
        __kernel __attribute__((reqd_work_group_size(64,1,1)))
        void add(__global int* a, __global int* b, int n) {
            int i = get_global_id(0);
            if (i < n) b[i] = a[i] + 1;
        }";

    #[test]
    fn parses_add_kernel() {
        let p = parse(ADD).expect("parse");
        assert_eq!(p.kernels.len(), 1);
        let k = &p.kernels[0];
        assert_eq!(k.name, "add");
        assert_eq!(k.params.len(), 3);
        assert_eq!(k.reqd_work_group_size(), Some((64, 1, 1)));
        assert!(k.params[0].ty.is_pointer());
        assert_eq!(k.body.stmts.len(), 2);
    }

    #[test]
    fn parses_for_with_unroll_pragma() {
        let p = parse(
            "__kernel void k(__global float* a) {
                float s = 0.0f;
                #pragma unroll 4
                for (int i = 0; i < 16; i++) { s += a[i]; }
                a[0] = s;
            }",
        )
        .expect("parse");
        let body = &p.kernels[0].body;
        let Stmt::For(f) = &body.stmts[1] else { panic!("expected for, got {:?}", body.stmts[1]) };
        assert_eq!(f.unroll, Some(4));
        assert!(f.init.is_some());
        assert!(f.cond.is_some());
        assert!(f.step.is_some());
    }

    #[test]
    fn parses_pipeline_pragma() {
        let p = parse(
            "__kernel void k(__global float* a) {
                float s = 0.0f;
                #pragma pipeline
                for (int i = 0; i < 16; i++) { s += a[i]; }
                a[0] = s;
            }",
        )
        .expect("parse");
        let Stmt::For(f) = &p.kernels[0].body.stmts[1] else { panic!() };
        assert!(f.pipeline);
        assert_eq!(f.unroll, None);
    }

    #[test]
    fn parses_local_array_decl() {
        let p = parse(
            "__kernel void k(__global float* a) {
                __local float tile[16][16];
                tile[0][0] = a[0];
            }",
        )
        .expect("parse");
        let Stmt::Decl(d) = &p.kernels[0].body.stmts[0] else { panic!() };
        assert_eq!(d.space, AddressSpace::Local);
        assert_eq!(d.ty, Type::Array(Box::new(Type::Array(Box::new(Type::float()), 16)), 16));
    }

    #[test]
    fn parses_compound_assign_and_increments() {
        let p = parse(
            "__kernel void k(__global int* a) {
                int i = 0;
                i += 2; i *= 3; i++; ++i; i--;
                a[0] = i;
            }",
        )
        .expect("parse");
        let n_assign = p.kernels[0]
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Assign(_)))
            .count();
        assert_eq!(n_assign, 6);
    }

    #[test]
    fn parses_ternary_and_casts() {
        let p = parse(
            "__kernel void k(__global float* a, int n) {
                int i = get_global_id(0);
                a[i] = (i < n) ? (float)i : 0.0f;
            }",
        )
        .expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[1] else { panic!() };
        assert!(matches!(asn.value.kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn parses_vector_members() {
        let p = parse(
            "__kernel void k(__global float4* a) {
                float4 v = a[0];
                v.x = v.y + v.s2;
                a[0] = v;
            }",
        )
        .expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[1] else { panic!() };
        assert!(matches!(asn.target, LValue::Member { lane: 0, .. }));
    }

    #[test]
    fn parses_vector_literal_constructor() {
        let p = parse(
            "__kernel void k(__global float4* a, float s) {
                a[0] = (float4)(1.0f, 2.0f, s, 4.0f);
                a[1] = (float4)(0.5f);
            }",
        )
        .expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[0] else { panic!() };
        let ExprKind::VectorLit { elems, .. } = &asn.value.kind else {
            panic!("expected vector literal, got {:?}", asn.value.kind)
        };
        assert_eq!(elems.len(), 4);
        // The single-element form has no top-level comma, so it parses as
        // a (splatting) cast — semantically identical.
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[1] else { panic!() };
        assert!(matches!(asn.value.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn plain_cast_of_parenthesised_operand_still_works() {
        let p = parse("__kernel void k(__global float* a, int n) { a[0] = (float)(n + 1); }")
            .expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[0] else { panic!() };
        assert!(matches!(asn.value.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn parses_while_and_do_while() {
        let p = parse(
            "__kernel void k(__global int* a) {
                int i = 0;
                while (i < 10) { i++; }
                do { i--; } while (i > 0);
                a[0] = i;
            }",
        )
        .expect("parse");
        assert!(matches!(p.kernels[0].body.stmts[1], Stmt::While(_)));
        assert!(matches!(p.kernels[0].body.stmts[2], Stmt::DoWhile(_)));
    }

    #[test]
    fn rejects_non_void_kernel() {
        assert!(parse("__kernel int k() { return 0; }").is_err());
    }

    #[test]
    fn rejects_unassignable_target() {
        assert!(parse("__kernel void k(__global int* a) { 1 = 2; }").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("__kernel void k( {").is_err());
        assert!(parse("not a kernel").is_err());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("__kernel void k(__global int* a) { a[0] = 1 + 2 * 3; }").expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[0] else { panic!() };
        let ExprKind::Binary { op: BinOp::Add, rhs, .. } = &asn.value.kind else {
            panic!("expected top-level add")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn sizeof_folds_to_constant() {
        let p = parse("__kernel void k(__global int* a) { a[0] = sizeof(float4); }").expect("parse");
        let Stmt::Assign(asn) = &p.kernels[0].body.stmts[0] else { panic!() };
        assert_eq!(asn.value.kind, ExprKind::IntLit(16));
    }

    #[test]
    fn multi_declarator_statement_splits() {
        let p = parse("__kernel void k(__global int* a) { int x = 1, y = 2; a[0] = x + y; }")
            .expect("parse");
        let Stmt::Block(b) = &p.kernels[0].body.stmts[0] else { panic!() };
        assert_eq!(b.stmts.len(), 2);
    }
}
