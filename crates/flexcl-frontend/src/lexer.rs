//! Hand-written lexer for the OpenCL C subset.
//!
//! The lexer handles line (`//`) and block (`/* */`) comments, `#pragma`
//! lines (which are surfaced as [`TokenKind::Pragma`] tokens so the parser
//! can attach them to the following statement), and the usual C numeric
//! literal forms including hex integers and float suffixes.

use crate::error::{FrontendError, Result};
use crate::token::{Keyword, Punct, Span, Token, TokenKind};

/// Converts a source string into a token stream.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src str,
    bytes: &'src [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    /// Lexes the entire input, returning the token stream terminated by
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns [`FrontendError::Lex`] on malformed literals, unterminated
    /// comments, or characters outside the accepted subset.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                break;
            }
        }
        Ok(out)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn error(&self, msg: impl Into<String>) -> FrontendError {
        FrontendError::Lex {
            message: msg.into(),
            span: Span::new(self.pos, self.pos + 1, self.line, self.col),
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start_line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(self.error(format!(
                                    "unterminated block comment starting on line {start_line}"
                                )));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok(Token::new(TokenKind::Eof, self.span_from(start, line, col)));
        };

        if b == b'#' {
            return self.lex_directive(start, line, col);
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            return Ok(self.lex_ident(start, line, col));
        }
        if b.is_ascii_digit() || (b == b'.' && self.peek2().is_some_and(|c| c.is_ascii_digit())) {
            return self.lex_number(start, line, col);
        }
        self.lex_punct(start, line, col)
    }

    fn lex_directive(&mut self, start: usize, line: u32, col: u32) -> Result<Token> {
        // Consume to end of line; recognise `#pragma`, reject other directives.
        let line_start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.src[line_start..self.pos].trim();
        let body = text
            .strip_prefix('#')
            .map(str::trim_start)
            .unwrap_or(text);
        if let Some(rest) = body.strip_prefix("pragma") {
            Ok(Token::new(
                TokenKind::Pragma(rest.trim().to_string()),
                self.span_from(start, line, col),
            ))
        } else {
            Err(FrontendError::Lex {
                message: format!("unsupported preprocessor directive `{text}`"),
                span: Span::new(start, self.pos, line, col),
            })
        }
    }

    fn lex_ident(&mut self, start: usize, line: u32, col: u32) -> Token {
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = &self.src[start..self.pos];
        let span = self.span_from(start, line, col);
        match Keyword::from_ident(text) {
            Some(kw) => Token::new(TokenKind::Keyword(kw), span),
            None => Token::new(TokenKind::Ident(text.to_string()), span),
        }
    }

    fn lex_number(&mut self, start: usize, line: u32, col: u32) -> Result<Token> {
        // Hex integer.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let digits_start = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == digits_start {
                return Err(self.error("expected hex digits after `0x`"));
            }
            let text = &self.src[digits_start..self.pos];
            let value = i64::from_str_radix(text, 16).map_err(|_| {
                self.error(format!("hex literal `0x{text}` does not fit in 64 bits"))
            })?;
            self.eat_int_suffix();
            return Ok(Token::new(TokenKind::IntLit(value), self.span_from(start, line, col)));
        }

        let mut is_float = false;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.peek() == Some(b'.') && self.peek2() != Some(b'.') {
            is_float = true;
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.bytes.get(ahead), Some(b'+') | Some(b'-')) {
                ahead += 1;
            }
            if self.bytes.get(ahead).is_some_and(|b| b.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
            }
        }

        let text = &self.src[start..self.pos];
        let span_end = self.pos;
        if is_float || matches!(self.peek(), Some(b'f') | Some(b'F')) {
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                self.bump();
            }
            let value: f64 = self.src[start..span_end]
                .parse()
                .map_err(|_| self.error(format!("malformed float literal `{text}`")))?;
            Ok(Token::new(TokenKind::FloatLit(value), self.span_from(start, line, col)))
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| self.error(format!("integer literal `{text}` does not fit in 64 bits")))?;
            self.eat_int_suffix();
            Ok(Token::new(TokenKind::IntLit(value), self.span_from(start, line, col)))
        }
    }

    fn eat_int_suffix(&mut self) {
        while matches!(self.peek(), Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')) {
            self.bump();
        }
    }

    fn lex_punct(&mut self, start: usize, line: u32, col: u32) -> Result<Token> {
        use Punct::*;
        let b = self.bump().expect("caller checked non-empty");
        let two = self.peek();
        let three = self.peek2();
        let p = match (b, two, three) {
            (b'<', Some(b'<'), Some(b'=')) => {
                self.bump();
                self.bump();
                ShlEq
            }
            (b'>', Some(b'>'), Some(b'=')) => {
                self.bump();
                self.bump();
                ShrEq
            }
            (b'<', Some(b'<'), _) => {
                self.bump();
                Shl
            }
            (b'>', Some(b'>'), _) => {
                self.bump();
                Shr
            }
            (b'<', Some(b'='), _) => {
                self.bump();
                Le
            }
            (b'>', Some(b'='), _) => {
                self.bump();
                Ge
            }
            (b'=', Some(b'='), _) => {
                self.bump();
                EqEq
            }
            (b'!', Some(b'='), _) => {
                self.bump();
                Ne
            }
            (b'&', Some(b'&'), _) => {
                self.bump();
                AmpAmp
            }
            (b'|', Some(b'|'), _) => {
                self.bump();
                PipePipe
            }
            (b'+', Some(b'+'), _) => {
                self.bump();
                PlusPlus
            }
            (b'-', Some(b'-'), _) => {
                self.bump();
                MinusMinus
            }
            (b'-', Some(b'>'), _) => {
                self.bump();
                Arrow
            }
            (b'+', Some(b'='), _) => {
                self.bump();
                PlusEq
            }
            (b'-', Some(b'='), _) => {
                self.bump();
                MinusEq
            }
            (b'*', Some(b'='), _) => {
                self.bump();
                StarEq
            }
            (b'/', Some(b'='), _) => {
                self.bump();
                SlashEq
            }
            (b'%', Some(b'='), _) => {
                self.bump();
                PercentEq
            }
            (b'&', Some(b'='), _) => {
                self.bump();
                AmpEq
            }
            (b'|', Some(b'='), _) => {
                self.bump();
                PipeEq
            }
            (b'^', Some(b'='), _) => {
                self.bump();
                CaretEq
            }
            (b'(', _, _) => LParen,
            (b')', _, _) => RParen,
            (b'{', _, _) => LBrace,
            (b'}', _, _) => RBrace,
            (b'[', _, _) => LBracket,
            (b']', _, _) => RBracket,
            (b';', _, _) => Semi,
            (b',', _, _) => Comma,
            (b'.', _, _) => Dot,
            (b'?', _, _) => Question,
            (b':', _, _) => Colon,
            (b'+', _, _) => Plus,
            (b'-', _, _) => Minus,
            (b'*', _, _) => Star,
            (b'/', _, _) => Slash,
            (b'%', _, _) => Percent,
            (b'&', _, _) => Amp,
            (b'|', _, _) => Pipe,
            (b'^', _, _) => Caret,
            (b'~', _, _) => Tilde,
            (b'!', _, _) => Bang,
            (b'<', _, _) => Lt,
            (b'>', _, _) => Gt,
            (b'=', _, _) => Eq,
            _ => {
                return Err(FrontendError::Lex {
                    message: format!("unexpected character `{}`", b as char),
                    span: Span::new(start, start + 1, line, col),
                })
            }
        };
        Ok(Token::new(TokenKind::Punct(p), self.span_from(start, line, col)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_kernel_header() {
        let ks = kinds("__kernel void add(__global int* a)");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Kernel));
        assert_eq!(ks[1], TokenKind::Keyword(Keyword::Void));
        assert_eq!(ks[2], TokenKind::Ident("add".into()));
        assert_eq!(ks[3], TokenKind::Punct(Punct::LParen));
        assert_eq!(ks[4], TokenKind::Keyword(Keyword::Global));
        assert!(matches!(ks.last(), Some(TokenKind::Eof)));
    }

    #[test]
    fn lexes_numeric_literals() {
        let ks = kinds("42 0x1f 3.5 1e3 2.5f 7u 9L");
        assert_eq!(ks[0], TokenKind::IntLit(42));
        assert_eq!(ks[1], TokenKind::IntLit(31));
        assert_eq!(ks[2], TokenKind::FloatLit(3.5));
        assert_eq!(ks[3], TokenKind::FloatLit(1000.0));
        assert_eq!(ks[4], TokenKind::FloatLit(2.5));
        assert_eq!(ks[5], TokenKind::IntLit(7));
        assert_eq!(ks[6], TokenKind::IntLit(9));
    }

    #[test]
    fn lexes_compound_operators() {
        let ks = kinds("a <<= b >>= c << d >> e <= f >= g == h != i += j");
        assert!(ks.contains(&TokenKind::Punct(Punct::ShlEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::ShrEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Shl)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Shr)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Le)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ge)));
        assert!(ks.contains(&TokenKind::Punct(Punct::EqEq)));
        assert!(ks.contains(&TokenKind::Punct(Punct::Ne)));
        assert!(ks.contains(&TokenKind::Punct(Punct::PlusEq)));
    }

    #[test]
    fn skips_comments() {
        let ks = kinds("a // line comment\n b /* block\n comment */ c");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn surfaces_pragmas() {
        let ks = kinds("#pragma unroll 4\nfor");
        assert_eq!(ks[0], TokenKind::Pragma("unroll 4".into()));
        assert_eq!(ks[1], TokenKind::Keyword(Keyword::For));
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(Lexer::new("a /* nope").tokenize().is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(Lexer::new("a @ b").tokenize().is_err());
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n  c").tokenize().expect("lex");
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
        assert_eq!(toks[2].span.col, 3);
    }
}
