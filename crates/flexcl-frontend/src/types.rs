//! The OpenCL C type system subset used throughout FlexCL.

use std::fmt;

/// Scalar element types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scalar {
    /// `bool` — the result type of comparisons.
    Bool,
    /// `char` (8-bit signed).
    I8,
    /// `uchar` (8-bit unsigned).
    U8,
    /// `short` (16-bit signed).
    I16,
    /// `ushort` (16-bit unsigned).
    U16,
    /// `int` (32-bit signed).
    I32,
    /// `uint` / `size_t` (32-bit unsigned; SDAccel uses 32-bit size_t on-device).
    U32,
    /// `long` (64-bit signed).
    I64,
    /// `ulong` (64-bit unsigned).
    U64,
    /// `float` (IEEE-754 binary32).
    F32,
    /// `double` (IEEE-754 binary64).
    F64,
}

impl Scalar {
    /// Bit width of the scalar.
    pub fn bits(self) -> u32 {
        match self {
            Scalar::Bool => 1,
            Scalar::I8 | Scalar::U8 => 8,
            Scalar::I16 | Scalar::U16 => 16,
            Scalar::I32 | Scalar::U32 | Scalar::F32 => 32,
            Scalar::I64 | Scalar::U64 | Scalar::F64 => 64,
        }
    }

    /// Size in bytes when stored in memory (bool is stored as one byte).
    pub fn bytes(self) -> u32 {
        self.bits().max(8) / 8
    }

    /// Whether this is `float` or `double`.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32 | Scalar::F64)
    }

    /// Whether this is a signed integer type.
    pub fn is_signed_int(self) -> bool {
        matches!(self, Scalar::I8 | Scalar::I16 | Scalar::I32 | Scalar::I64)
    }

    /// Whether this is an unsigned integer type (bool counts as unsigned).
    pub fn is_unsigned_int(self) -> bool {
        matches!(self, Scalar::Bool | Scalar::U8 | Scalar::U16 | Scalar::U32 | Scalar::U64)
    }

    /// Whether this is any integer type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// The usual C arithmetic-conversion result of combining two scalars.
    pub fn unify(self, other: Scalar) -> Scalar {
        use Scalar::*;
        if self == other {
            return self;
        }
        // Floats dominate.
        if self == F64 || other == F64 {
            return F64;
        }
        if self == F32 || other == F32 {
            return F32;
        }
        // Integer promotion: widest wins; unsigned wins ties.
        let (a, b) = (self, other);
        let width = a.bits().max(b.bits()).max(32);
        let unsigned = (a.is_unsigned_int() && a.bits() >= width)
            || (b.is_unsigned_int() && b.bits() >= width);
        match (width, unsigned) {
            (64, true) => U64,
            (64, false) => I64,
            (_, true) => U32,
            (_, false) => I32,
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scalar::Bool => "bool",
            Scalar::I8 => "char",
            Scalar::U8 => "uchar",
            Scalar::I16 => "short",
            Scalar::U16 => "ushort",
            Scalar::I32 => "int",
            Scalar::U32 => "uint",
            Scalar::I64 => "long",
            Scalar::U64 => "ulong",
            Scalar::F32 => "float",
            Scalar::F64 => "double",
        };
        f.write_str(s)
    }
}

/// OpenCL address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressSpace {
    /// Off-chip DRAM shared by all work-items (`__global`).
    Global,
    /// On-chip memory shared within a work-group (`__local`).
    Local,
    /// Read-only memory initialised by the host (`__constant`).
    Constant,
    /// Per-work-item storage (`__private`) — registers or small arrays.
    #[default]
    Private,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Constant => "__constant",
            AddressSpace::Private => "__private",
        };
        f.write_str(s)
    }
}

/// A type in the OpenCL subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a function return type.
    Void,
    /// A scalar value.
    Scalar(Scalar),
    /// A vector of 2, 4, 8 or 16 scalar lanes (e.g. `float4`).
    Vector(Scalar, u8),
    /// A pointer into some address space.
    Pointer(Box<Type>, AddressSpace),
    /// A fixed-size array (used for `__local` / `__private` array declarations).
    Array(Box<Type>, usize),
}

impl Type {
    /// Shorthand for a scalar type.
    pub fn scalar(s: Scalar) -> Type {
        Type::Scalar(s)
    }

    /// Shorthand for `int`.
    pub fn int() -> Type {
        Type::Scalar(Scalar::I32)
    }

    /// Shorthand for `float`.
    pub fn float() -> Type {
        Type::Scalar(Scalar::F32)
    }

    /// Shorthand for a pointer to `elem` in `space`.
    pub fn pointer(elem: Type, space: AddressSpace) -> Type {
        Type::Pointer(Box::new(elem), space)
    }

    /// Returns the scalar element type of a scalar or vector, if any.
    pub fn element_scalar(&self) -> Option<Scalar> {
        match self {
            Type::Scalar(s) => Some(*s),
            Type::Vector(s, _) => Some(*s),
            _ => None,
        }
    }

    /// Number of vector lanes (1 for scalars).
    pub fn lanes(&self) -> u32 {
        match self {
            Type::Vector(_, n) => u32::from(*n),
            _ => 1,
        }
    }

    /// Size of a value of this type in bytes, if it has one.
    pub fn bytes(&self) -> Option<u64> {
        match self {
            Type::Void => None,
            Type::Scalar(s) => Some(u64::from(s.bytes())),
            Type::Vector(s, n) => Some(u64::from(s.bytes()) * u64::from(*n)),
            Type::Pointer(_, _) => Some(8),
            Type::Array(t, n) => Some(t.bytes()? * *n as u64),
        }
    }

    /// Bit width of the data payload (used for memory coalescing factors).
    pub fn bit_width(&self) -> Option<u64> {
        self.bytes().map(|b| b * 8)
    }

    /// Whether the type is a scalar or vector of floats.
    pub fn is_float(&self) -> bool {
        self.element_scalar().is_some_and(Scalar::is_float)
    }

    /// Whether the type is a scalar or vector of integers.
    pub fn is_int(&self) -> bool {
        self.element_scalar().is_some_and(Scalar::is_int)
    }

    /// Whether the type is a pointer.
    pub fn is_pointer(&self) -> bool {
        matches!(self, Type::Pointer(_, _))
    }

    /// The pointee type and address space if this is a pointer.
    pub fn pointee(&self) -> Option<(&Type, AddressSpace)> {
        match self {
            Type::Pointer(t, s) => Some((t, *s)),
            _ => None,
        }
    }

    /// Parses vector type names such as `float4` or `int16`.
    pub fn from_name(name: &str) -> Option<Type> {
        let (base, lanes) = name
            .char_indices()
            .find(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| name.split_at(i))?;
        let lanes: u8 = lanes.parse().ok()?;
        if !matches!(lanes, 2 | 4 | 8 | 16) {
            return None;
        }
        let scalar = match base {
            "char" => Scalar::I8,
            "uchar" => Scalar::U8,
            "short" => Scalar::I16,
            "ushort" => Scalar::U16,
            "int" => Scalar::I32,
            "uint" => Scalar::U32,
            "long" => Scalar::I64,
            "ulong" => Scalar::U64,
            "float" => Scalar::F32,
            "double" => Scalar::F64,
            _ => return None,
        };
        Some(Type::Vector(scalar, lanes))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s, n) => write!(f, "{s}{n}"),
            Type::Pointer(t, sp) => write!(f, "{sp} {t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths() {
        assert_eq!(Scalar::I32.bits(), 32);
        assert_eq!(Scalar::F64.bytes(), 8);
        assert_eq!(Scalar::Bool.bytes(), 1);
    }

    #[test]
    fn unify_promotes_to_float() {
        assert_eq!(Scalar::I32.unify(Scalar::F32), Scalar::F32);
        assert_eq!(Scalar::F32.unify(Scalar::F64), Scalar::F64);
        assert_eq!(Scalar::U8.unify(Scalar::I16), Scalar::I32);
        assert_eq!(Scalar::U64.unify(Scalar::I32), Scalar::U64);
    }

    #[test]
    fn vector_names_parse() {
        assert_eq!(Type::from_name("float4"), Some(Type::Vector(Scalar::F32, 4)));
        assert_eq!(Type::from_name("int16"), Some(Type::Vector(Scalar::I32, 16)));
        assert_eq!(Type::from_name("float3"), None);
        assert_eq!(Type::from_name("gid"), None);
    }

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Vector(Scalar::F32, 4).bytes(), Some(16));
        assert_eq!(Type::Array(Box::new(Type::int()), 10).bytes(), Some(40));
        assert_eq!(Type::Void.bytes(), None);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Type::Vector(Scalar::F32, 4).to_string(), "float4");
        assert_eq!(
            Type::pointer(Type::float(), AddressSpace::Global).to_string(),
            "__global float*"
        );
    }
}
