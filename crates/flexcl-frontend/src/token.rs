//! Lexical tokens for the OpenCL C subset accepted by FlexCL.

use std::fmt;

/// A half-open byte range into the original source text.
///
/// Spans are carried on every token and AST node so that semantic errors can
/// point back at the offending source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column number of `start`.
    pub col: u32,
}

impl Span {
    /// Creates a new span covering `start..end` at the given position.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span { start, end, line, col }
    }

    /// Returns the smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
            col: if other.line < self.line { other.col } else { self.col },
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords recognised by the lexer (variants are the keywords themselves).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Kernel,
    Global,
    Local,
    Constant,
    Private,
    Attribute,
    Void,
    Bool,
    Char,
    Uchar,
    Short,
    Ushort,
    Int,
    Uint,
    Long,
    Ulong,
    Float,
    Double,
    SizeT,
    If,
    Else,
    For,
    While,
    Do,
    Return,
    Break,
    Continue,
    Const,
    Restrict,
    Volatile,
    Unsigned,
    Signed,
    Struct,
    Typedef,
    Sizeof,
}

impl Keyword {
    /// Looks up an identifier; returns the keyword if it is one.
    pub fn from_ident(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "__kernel" | "kernel" => Kernel,
            "__global" | "global" => Global,
            "__local" | "local" => Local,
            "__constant" | "constant" => Constant,
            "__private" | "private" => Private,
            "__attribute__" => Attribute,
            "void" => Void,
            "bool" => Bool,
            "char" => Char,
            "uchar" => Uchar,
            "short" => Short,
            "ushort" => Ushort,
            "int" => Int,
            "uint" => Uint,
            "long" => Long,
            "ulong" => Ulong,
            "float" => Float,
            "double" => Double,
            "size_t" => SizeT,
            "if" => If,
            "else" => Else,
            "for" => For,
            "while" => While,
            "do" => Do,
            "return" => Return,
            "break" => Break,
            "continue" => Continue,
            "const" => Const,
            "restrict" => Restrict,
            "volatile" => Volatile,
            "unsigned" => Unsigned,
            "signed" => Signed,
            "struct" => Struct,
            "typedef" => Typedef,
            "sizeof" => Sizeof,
            _ => return None,
        })
    }
}

impl fmt::Display for Keyword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Keyword::Kernel => "__kernel",
            Keyword::Global => "__global",
            Keyword::Local => "__local",
            Keyword::Constant => "__constant",
            Keyword::Private => "__private",
            Keyword::Attribute => "__attribute__",
            Keyword::Void => "void",
            Keyword::Bool => "bool",
            Keyword::Char => "char",
            Keyword::Uchar => "uchar",
            Keyword::Short => "short",
            Keyword::Ushort => "ushort",
            Keyword::Int => "int",
            Keyword::Uint => "uint",
            Keyword::Long => "long",
            Keyword::Ulong => "ulong",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::SizeT => "size_t",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Do => "do",
            Keyword::Return => "return",
            Keyword::Break => "break",
            Keyword::Continue => "continue",
            Keyword::Const => "const",
            Keyword::Restrict => "restrict",
            Keyword::Volatile => "volatile",
            Keyword::Unsigned => "unsigned",
            Keyword::Signed => "signed",
            Keyword::Struct => "struct",
            Keyword::Typedef => "typedef",
            Keyword::Sizeof => "sizeof",
        };
        f.write_str(s)
    }
}

/// Punctuation and operator tokens (variants name the glyphs).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Punct {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow,
    Question,
    Colon,
    // arithmetic
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    // bitwise
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    // logical
    AmpAmp,
    PipePipe,
    Bang,
    // comparison
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    Ne,
    // assignment
    Eq,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    PercentEq,
    AmpEq,
    PipeEq,
    CaretEq,
    ShlEq,
    ShrEq,
    // increment / decrement
    PlusPlus,
    MinusMinus,
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Punct::LParen => "(",
            Punct::RParen => ")",
            Punct::LBrace => "{",
            Punct::RBrace => "}",
            Punct::LBracket => "[",
            Punct::RBracket => "]",
            Punct::Semi => ";",
            Punct::Comma => ",",
            Punct::Dot => ".",
            Punct::Arrow => "->",
            Punct::Question => "?",
            Punct::Colon => ":",
            Punct::Plus => "+",
            Punct::Minus => "-",
            Punct::Star => "*",
            Punct::Slash => "/",
            Punct::Percent => "%",
            Punct::Amp => "&",
            Punct::Pipe => "|",
            Punct::Caret => "^",
            Punct::Tilde => "~",
            Punct::Shl => "<<",
            Punct::Shr => ">>",
            Punct::AmpAmp => "&&",
            Punct::PipePipe => "||",
            Punct::Bang => "!",
            Punct::Lt => "<",
            Punct::Gt => ">",
            Punct::Le => "<=",
            Punct::Ge => ">=",
            Punct::EqEq => "==",
            Punct::Ne => "!=",
            Punct::Eq => "=",
            Punct::PlusEq => "+=",
            Punct::MinusEq => "-=",
            Punct::StarEq => "*=",
            Punct::SlashEq => "/=",
            Punct::PercentEq => "%=",
            Punct::AmpEq => "&=",
            Punct::PipeEq => "|=",
            Punct::CaretEq => "^=",
            Punct::ShlEq => "<<=",
            Punct::ShrEq => ">>=",
            Punct::PlusPlus => "++",
            Punct::MinusMinus => "--",
        };
        f.write_str(s)
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier that is not a keyword, e.g. `gid` or `get_global_id`.
    Ident(String),
    /// A reserved word.
    Keyword(Keyword),
    /// An integer literal; suffixes (`u`, `l`) are folded away.
    IntLit(i64),
    /// A floating-point literal; the `f` suffix is folded away.
    FloatLit(f64),
    /// Punctuation or operator.
    Punct(Punct),
    /// A `#pragma ...` line, carried verbatim (without the `#pragma` prefix).
    Pragma(String),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Keyword(k) => write!(f, "keyword `{k}`"),
            TokenKind::IntLit(v) => write!(f, "integer literal `{v}`"),
            TokenKind::FloatLit(v) => write!(f, "float literal `{v}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Pragma(s) => write!(f, "#pragma {s}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed from.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}
