//! # flexcl-frontend
//!
//! OpenCL C subset frontend for the FlexCL analytical performance model
//! (reproduction of Wang, Liang, Zhang, *FlexCL: An Analytical Performance
//! Model for OpenCL Workloads on Flexible FPGAs*, DAC 2017).
//!
//! The original FlexCL used Clang 3.4 as its OpenCL frontend and consumed
//! LLVM IR. This crate replaces that dependency with a self-contained
//! lexer + parser + semantic analyzer for the subset of OpenCL C that the
//! Rodinia and PolyBench kernel corpora exercise: kernel definitions with
//! SDAccel-style attributes, address-space-qualified pointers, local array
//! declarations, scalar/vector arithmetic, control flow (`if`, `for`,
//! `while`, `do`), work-item geometry builtins, math builtins, and
//! `barrier`.
//!
//! The typical pipeline is:
//!
//! ```
//! # fn main() -> Result<(), flexcl_frontend::FrontendError> {
//! let src = "__kernel void scale(__global float* a, float f) {
//!                int i = get_global_id(0);
//!                a[i] = a[i] * f;
//!            }";
//! let mut program = flexcl_frontend::parse(src)?;
//! flexcl_frontend::analyze(&mut program)?;     // fills in expression types
//! assert_eq!(program.kernels[0].name, "scale");
//! # Ok(())
//! # }
//! ```
//!
//! After [`analyze`] succeeds, every [`ast::Expr`] carries its [`types::Type`]
//! and the program is ready for IR lowering (see the `flexcl-ir` crate).

#![warn(missing_docs)]

pub mod ast;
pub mod builtins;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;
pub mod types;

pub use ast::Program;
pub use error::{FrontendError, Result};
pub use parser::parse;
pub use sema::{analyze, parse_and_check};
pub use token::Span;
pub use types::{AddressSpace, Scalar, Type};
