//! OpenCL builtin functions recognised by the frontend.
//!
//! Builtins fall into four groups: work-item geometry queries, barriers,
//! math functions, and explicit conversions (`convert_<type>`). The IR
//! lowering maps each group onto dedicated IR opcodes; the FPGA latency
//! database is keyed by the same [`MathOp`] values.

use crate::error::{FrontendError, Result};
use crate::token::Span;
use crate::types::{Scalar, Type};
use std::fmt;

/// Work-item geometry query kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkItemFn {
    /// `get_global_id(dim)`.
    GlobalId,
    /// `get_local_id(dim)`.
    LocalId,
    /// `get_group_id(dim)`.
    GroupId,
    /// `get_global_size(dim)`.
    GlobalSize,
    /// `get_local_size(dim)`.
    LocalSize,
    /// `get_num_groups(dim)`.
    NumGroups,
    /// `get_work_dim()`.
    WorkDim,
}

impl fmt::Display for WorkItemFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkItemFn::GlobalId => "get_global_id",
            WorkItemFn::LocalId => "get_local_id",
            WorkItemFn::GroupId => "get_group_id",
            WorkItemFn::GlobalSize => "get_global_size",
            WorkItemFn::LocalSize => "get_local_size",
            WorkItemFn::NumGroups => "get_num_groups",
            WorkItemFn::WorkDim => "get_work_dim",
        };
        f.write_str(s)
    }
}

/// Math builtins, named after their OpenCL functions. Arity is given by
/// [`MathOp::arity`].
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MathOp {
    Sqrt,
    Rsqrt,
    Exp,
    Exp2,
    Log,
    Log2,
    Sin,
    Cos,
    Tan,
    Fabs,
    Floor,
    Ceil,
    Round,
    Trunc,
    Pow,
    Fmod,
    Atan2,
    Hypot,
    Fmin,
    Fmax,
    Mad,
    Fma,
    Clamp,
    Mix,
    Min,
    Max,
    Abs,
    Mul24,
    Mad24,
    Select,
}

impl MathOp {
    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        use MathOp::*;
        match self {
            Sqrt | Rsqrt | Exp | Exp2 | Log | Log2 | Sin | Cos | Tan | Fabs | Floor | Ceil
            | Round | Trunc | Abs => 1,
            Pow | Fmod | Atan2 | Hypot | Fmin | Fmax | Min | Max | Mul24 => 2,
            Mad | Fma | Clamp | Mix | Mad24 | Select => 3,
        }
    }

    /// Whether the builtin only accepts floating-point arguments.
    pub fn float_only(self) -> bool {
        use MathOp::*;
        matches!(
            self,
            Sqrt | Rsqrt
                | Exp
                | Exp2
                | Log
                | Log2
                | Sin
                | Cos
                | Tan
                | Fabs
                | Floor
                | Ceil
                | Round
                | Trunc
                | Pow
                | Fmod
                | Atan2
                | Hypot
                | Fmin
                | Fmax
                | Mad
                | Fma
                | Clamp
                | Mix
        )
    }

    /// Whether the builtin only accepts integer arguments.
    pub fn int_only(self) -> bool {
        matches!(self, MathOp::Mul24 | MathOp::Mad24)
    }
}

impl fmt::Display for MathOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MathOp::Sqrt => "sqrt",
            MathOp::Rsqrt => "rsqrt",
            MathOp::Exp => "exp",
            MathOp::Exp2 => "exp2",
            MathOp::Log => "log",
            MathOp::Log2 => "log2",
            MathOp::Sin => "sin",
            MathOp::Cos => "cos",
            MathOp::Tan => "tan",
            MathOp::Fabs => "fabs",
            MathOp::Floor => "floor",
            MathOp::Ceil => "ceil",
            MathOp::Round => "round",
            MathOp::Trunc => "trunc",
            MathOp::Pow => "pow",
            MathOp::Fmod => "fmod",
            MathOp::Atan2 => "atan2",
            MathOp::Hypot => "hypot",
            MathOp::Fmin => "fmin",
            MathOp::Fmax => "fmax",
            MathOp::Mad => "mad",
            MathOp::Fma => "fma",
            MathOp::Clamp => "clamp",
            MathOp::Mix => "mix",
            MathOp::Min => "min",
            MathOp::Max => "max",
            MathOp::Abs => "abs",
            MathOp::Mul24 => "mul24",
            MathOp::Mad24 => "mad24",
            MathOp::Select => "select",
        };
        f.write_str(s)
    }
}

/// A resolved builtin call.
#[derive(Debug, Clone, PartialEq)]
pub enum Builtin {
    /// A work-item geometry query.
    WorkItem(WorkItemFn),
    /// `barrier(flags)` — a work-group barrier.
    Barrier,
    /// `mem_fence(flags)` — treated like a barrier for modeling purposes.
    MemFence,
    /// A math function.
    Math(MathOp),
    /// `convert_<type>(x)` explicit conversion.
    Convert(Type),
}

/// Resolves a callee name to a builtin, if it is one.
///
/// `native_`-prefixed math functions resolve to the same [`MathOp`] as their
/// precise counterparts (the latency database distinguishes them only through
/// the platform profile, matching how FlexCL averages IP implementations).
pub fn resolve(name: &str) -> Option<Builtin> {
    use MathOp::*;
    let wi = match name {
        "get_global_id" => Some(WorkItemFn::GlobalId),
        "get_local_id" => Some(WorkItemFn::LocalId),
        "get_group_id" => Some(WorkItemFn::GroupId),
        "get_global_size" => Some(WorkItemFn::GlobalSize),
        "get_local_size" => Some(WorkItemFn::LocalSize),
        "get_num_groups" => Some(WorkItemFn::NumGroups),
        "get_work_dim" => Some(WorkItemFn::WorkDim),
        _ => None,
    };
    if let Some(wi) = wi {
        return Some(Builtin::WorkItem(wi));
    }
    if name == "barrier" {
        return Some(Builtin::Barrier);
    }
    if name == "mem_fence" || name == "read_mem_fence" || name == "write_mem_fence" {
        return Some(Builtin::MemFence);
    }
    if let Some(rest) = name.strip_prefix("convert_") {
        let ty = match rest {
            "char" => Type::Scalar(Scalar::I8),
            "uchar" => Type::Scalar(Scalar::U8),
            "short" => Type::Scalar(Scalar::I16),
            "ushort" => Type::Scalar(Scalar::U16),
            "int" => Type::Scalar(Scalar::I32),
            "uint" => Type::Scalar(Scalar::U32),
            "long" => Type::Scalar(Scalar::I64),
            "ulong" => Type::Scalar(Scalar::U64),
            "float" => Type::Scalar(Scalar::F32),
            "double" => Type::Scalar(Scalar::F64),
            other => Type::from_name(other)?,
        };
        return Some(Builtin::Convert(ty));
    }
    let base = name.strip_prefix("native_").unwrap_or(name);
    let m = match base {
        "sqrt" => Sqrt,
        "rsqrt" => Rsqrt,
        "exp" => Exp,
        "exp2" => Exp2,
        "log" => Log,
        "log2" => Log2,
        "sin" => Sin,
        "cos" => Cos,
        "tan" => Tan,
        "fabs" => Fabs,
        "floor" => Floor,
        "ceil" => Ceil,
        "round" => Round,
        "trunc" => Trunc,
        "pow" | "powr" => Pow,
        "fmod" => Fmod,
        "atan2" => Atan2,
        "hypot" => Hypot,
        "fmin" => Fmin,
        "fmax" => Fmax,
        "mad" => Mad,
        "fma" => Fma,
        "clamp" => Clamp,
        "mix" => Mix,
        "min" => Min,
        "max" => Max,
        "abs" => Abs,
        "mul24" => Mul24,
        "mad24" => Mad24,
        "select" => Select,
        _ => return None,
    };
    Some(Builtin::Math(m))
}

/// Type-checks a builtin call, returning the result type.
///
/// # Errors
///
/// Returns [`FrontendError::Sema`] on arity or argument-type mismatches.
pub fn check(builtin: &Builtin, args: &[Type], span: Span) -> Result<Type> {
    let err = |msg: String| FrontendError::Sema { message: msg, span };
    match builtin {
        Builtin::WorkItem(WorkItemFn::WorkDim) => {
            if !args.is_empty() {
                return Err(err("get_work_dim takes no arguments".into()));
            }
            Ok(Type::Scalar(Scalar::U32))
        }
        Builtin::WorkItem(wi) => {
            if args.len() != 1 {
                return Err(err(format!("{wi} takes exactly one dimension argument")));
            }
            if !args[0].is_int() {
                return Err(err(format!("{wi} dimension must be an integer")));
            }
            Ok(Type::Scalar(Scalar::U32))
        }
        Builtin::Barrier | Builtin::MemFence => {
            if args.len() > 1 {
                return Err(err("barrier takes at most one flags argument".into()));
            }
            Ok(Type::Void)
        }
        Builtin::Convert(ty) => {
            if args.len() != 1 {
                return Err(err("conversion takes exactly one argument".into()));
            }
            if args[0].lanes() != ty.lanes() {
                return Err(err(format!(
                    "cannot convert {} to {} (lane count differs)",
                    args[0], ty
                )));
            }
            Ok(ty.clone())
        }
        Builtin::Math(m) => {
            if args.len() != m.arity() {
                return Err(err(format!("{m} takes {} argument(s), got {}", m.arity(), args.len())));
            }
            // All arguments must be scalar or same-width vectors.
            let lanes = args[0].lanes();
            for a in args {
                if a.element_scalar().is_none() {
                    return Err(err(format!("{m} arguments must be scalar or vector, got {a}")));
                }
                if a.lanes() != lanes && a.lanes() != 1 {
                    return Err(err(format!("{m} argument lane counts disagree")));
                }
            }
            let unified = args
                .iter()
                .filter_map(Type::element_scalar)
                .reduce(Scalar::unify)
                .expect("at least one argument");
            let result_scalar = if m.float_only() && !unified.is_float() {
                Scalar::F32
            } else if m.int_only() && unified.is_float() {
                return Err(err(format!("{m} requires integer arguments")));
            } else {
                unified
            };
            // `select` returns the value type of its first two args.
            Ok(if lanes > 1 {
                Type::Vector(result_scalar, lanes as u8)
            } else {
                Type::Scalar(result_scalar)
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_work_item_fns() {
        assert_eq!(resolve("get_global_id"), Some(Builtin::WorkItem(WorkItemFn::GlobalId)));
        assert_eq!(resolve("get_num_groups"), Some(Builtin::WorkItem(WorkItemFn::NumGroups)));
        assert_eq!(resolve("not_a_builtin"), None);
    }

    #[test]
    fn resolves_native_math_to_same_op() {
        assert_eq!(resolve("native_exp"), Some(Builtin::Math(MathOp::Exp)));
        assert_eq!(resolve("exp"), Some(Builtin::Math(MathOp::Exp)));
    }

    #[test]
    fn resolves_conversions() {
        assert_eq!(resolve("convert_int"), Some(Builtin::Convert(Type::int())));
        assert_eq!(
            resolve("convert_float4"),
            Some(Builtin::Convert(Type::Vector(Scalar::F32, 4)))
        );
    }

    #[test]
    fn checks_arity() {
        let b = resolve("sqrt").expect("builtin");
        assert!(check(&b, &[Type::float()], Span::default()).is_ok());
        assert!(check(&b, &[Type::float(), Type::float()], Span::default()).is_err());
    }

    #[test]
    fn float_only_promotes_ints() {
        let b = resolve("sqrt").expect("builtin");
        let ty = check(&b, &[Type::int()], Span::default()).expect("check");
        assert_eq!(ty, Type::float());
    }

    #[test]
    fn work_item_fns_return_u32() {
        let b = resolve("get_global_id").expect("builtin");
        let ty = check(&b, &[Type::int()], Span::default()).expect("check");
        assert_eq!(ty, Type::Scalar(Scalar::U32));
    }

    #[test]
    fn mad_is_ternary() {
        assert_eq!(MathOp::Mad.arity(), 3);
        assert_eq!(MathOp::Sqrt.arity(), 1);
        assert_eq!(MathOp::Pow.arity(), 2);
    }

    #[test]
    fn vector_math_keeps_lanes() {
        let b = resolve("fmax").expect("builtin");
        let v4 = Type::Vector(Scalar::F32, 4);
        let ty = check(&b, &[v4.clone(), v4.clone()], Span::default()).expect("check");
        assert_eq!(ty, v4);
    }
}
