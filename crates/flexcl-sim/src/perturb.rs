//! Synthesis-variance perturbation.
//!
//! The paper names FlexCL's two residual error sources (§4.2): (1) SDAccel
//! chooses among several hardware implementations per IR operation, with
//! different latencies, while the model uses the *average*; and (2) actual
//! per-access memory latency differs from the per-pattern average. The
//! System Run simulator reproduces source (1) by sampling a per-operation
//! implementation factor around the latency table — deterministic per seed,
//! as a given synthesis run is deterministic — and source (2) by servicing
//! every access through the behavioural DRAM model.
//!
//! The factor population itself ([`flexcl_sched::IMPL_FACTORS`]) lives in
//! `flexcl-sched`, shared with the analytical model's expected-schedule
//! ensemble; this module only owns the seeding policy.

use flexcl_sched::{
    impl_factor, impl_factor_weight_total, perturb_graph_with, ResourceClass, SchedGraph,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Samples one implementation factor.
pub fn sample_factor(rng: &mut StdRng) -> f64 {
    impl_factor(rng.gen_range(0..impl_factor_weight_total()))
}

/// Returns a copy of `graph` whose node latencies are perturbed by
/// per-node implementation factors.
pub fn perturb_graph(graph: &SchedGraph, rng: &mut StdRng) -> SchedGraph {
    perturb_graph_with(graph, &mut || sample_factor(rng))
}

/// Average factor drawn for a whole-kernel scalar quantity (serial
/// work-item latency): the mean of `n` per-op draws.
pub fn sample_aggregate_factor(rng: &mut StdRng, n: usize) -> f64 {
    let n = n.max(1);
    (0..n).map(|_| sample_factor(rng)).sum::<f64>() / n as f64
}

/// Marker: perturbation never changes resource classes.
pub fn preserves_resources(a: &SchedGraph, b: &SchedGraph) -> bool {
    a.len() == b.len()
        && a.nodes()
            .zip(b.nodes())
            .all(|((_, x), (_, y))| x.resource == y.resource)
        && a.edges() == b.edges()
}

/// Convenience used in tests: a graph with `n` fabric nodes in a chain.
pub fn chain_for_tests(lats: &[u32]) -> SchedGraph {
    let mut g = SchedGraph::new();
    let ids: Vec<_> = lats.iter().map(|l| g.add_node(*l, ResourceClass::Fabric)).collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn factors_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample_factor(&mut a), sample_factor(&mut b));
        }
    }

    #[test]
    fn factors_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = sample_factor(&mut rng);
            assert!((0.8..=1.2).contains(&f));
        }
    }

    #[test]
    fn perturbed_graph_preserves_structure() {
        let g = chain_for_tests(&[2, 4, 6, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = perturb_graph(&g, &mut rng);
        assert!(preserves_resources(&g, &p));
        // Zero-latency nodes stay zero.
        let last = p.nodes().last().expect("node").1;
        assert_eq!(last.latency, 0);
    }

    #[test]
    fn aggregate_factor_concentrates_near_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = sample_aggregate_factor(&mut rng, 1000);
        assert!((0.95..=1.05).contains(&f), "aggregate factor {f}");
    }
}
