//! Synthesis-variance perturbation.
//!
//! The paper names FlexCL's two residual error sources (§4.2): (1) SDAccel
//! chooses among several hardware implementations per IR operation, with
//! different latencies, while the model uses the *average*; and (2) actual
//! per-access memory latency differs from the per-pattern average. The
//! System Run simulator reproduces source (1) by sampling a per-operation
//! implementation factor around the latency table — deterministic per seed,
//! as a given synthesis run is deterministic — and source (2) by servicing
//! every access through the behavioural DRAM model.

use flexcl_sched::{ResourceClass, SchedGraph};
use rand::rngs::StdRng;
use rand::Rng;

/// Implementation-choice latency factors and their selection weights.
const FACTORS: [(f64, u32); 3] = [(0.8, 1), (1.0, 2), (1.3, 1)];

/// Samples one implementation factor.
pub fn sample_factor(rng: &mut StdRng) -> f64 {
    let total: u32 = FACTORS.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0..total);
    for (f, w) in FACTORS {
        if pick < w {
            return f;
        }
        pick -= w;
    }
    1.0
}

/// Returns a copy of `graph` whose node latencies are perturbed by
/// per-node implementation factors.
pub fn perturb_graph(graph: &SchedGraph, rng: &mut StdRng) -> SchedGraph {
    let mut out = SchedGraph::new();
    for (_, node) in graph.nodes() {
        let factor = sample_factor(rng);
        let lat = (f64::from(node.latency) * factor).round().max(0.0) as u32;
        // Zero-latency wires stay zero: there is nothing to implement.
        let lat = if node.latency == 0 { 0 } else { lat.max(1) };
        out.add_node(lat, node.resource);
    }
    for e in graph.edges() {
        out.add_edge_with_distance(e.from, e.to, e.distance);
    }
    out
}

/// Average factor drawn for a whole-kernel scalar quantity (serial
/// work-item latency): the mean of `n` per-op draws.
pub fn sample_aggregate_factor(rng: &mut StdRng, n: usize) -> f64 {
    let n = n.max(1);
    (0..n).map(|_| sample_factor(rng)).sum::<f64>() / n as f64
}

/// Marker: perturbation never changes resource classes.
pub fn preserves_resources(a: &SchedGraph, b: &SchedGraph) -> bool {
    a.len() == b.len()
        && a.nodes()
            .zip(b.nodes())
            .all(|((_, x), (_, y))| x.resource == y.resource)
        && a.edges() == b.edges()
}

/// Convenience used in tests: a graph with `n` fabric nodes in a chain.
pub fn chain_for_tests(lats: &[u32]) -> SchedGraph {
    let mut g = SchedGraph::new();
    let ids: Vec<_> = lats.iter().map(|l| g.add_node(*l, ResourceClass::Fabric)).collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1]);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn factors_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(sample_factor(&mut a), sample_factor(&mut b));
        }
    }

    #[test]
    fn factors_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = sample_factor(&mut rng);
            assert!((0.8..=1.3).contains(&f));
        }
    }

    #[test]
    fn perturbed_graph_preserves_structure() {
        let g = chain_for_tests(&[2, 4, 6, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        let p = perturb_graph(&g, &mut rng);
        assert!(preserves_resources(&g, &p));
        // Zero-latency nodes stay zero.
        let last = p.nodes().last().expect("node").1;
        assert_eq!(last.latency, 0);
    }

    #[test]
    fn aggregate_factor_concentrates_near_one() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = sample_aggregate_factor(&mut rng, 1000);
        assert!((0.95..=1.15).contains(&f), "aggregate factor {f}");
    }
}
