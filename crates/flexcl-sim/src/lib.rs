//! # flexcl-sim
//!
//! Cycle-level FPGA execution simulator — the "System Run" ground truth of
//! the FlexCL evaluation (DAC'17 reproduction).
//!
//! In the paper, every design point is synthesized to a bitstream with
//! SDAccel, run on the ADM-PCIE-7V3 board, and timed with the runtime
//! profiler. A reproduction without that hardware needs an executable
//! stand-in that contains the effects the analytical model *approximates*:
//!
//! * per-operation implementation variance (SDAccel picks among IP variants
//!   with different latencies; FlexCL models the average — the paper's
//!   first stated error source);
//! * true per-access DRAM behaviour through a banked, open-row simulator
//!   (the second stated error source: the model uses per-pattern average
//!   latencies);
//! * serialized per-CU AXI burst engines, pipeline stalls when memory lags
//!   computation, and round-robin work-group dispatch with jittered
//!   scheduling overhead.
//!
//! All variance is seeded and deterministic: like a real synthesis run, a
//! given (kernel, configuration, seed) always produces the same "bitstream".
//!
//! ```no_run
//! use flexcl_core::{OptimizationConfig, Platform, Workload};
//! use flexcl_interp::KernelArg;
//! use flexcl_sim::{system_run, SimOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = flexcl_frontend::parse_and_check(
//!     "__kernel void inc(__global int* a) {
//!          int i = get_global_id(0);
//!          a[i] = a[i] + 1;
//!      }",
//! )?;
//! let func = flexcl_ir::lower_kernel(&program.kernels[0])?;
//! let workload = Workload { args: vec![KernelArg::IntBuf(vec![0; 4096])], global: (4096, 1) };
//! let config = OptimizationConfig::baseline((64, 1));
//! let measured = system_run(
//!     &func,
//!     &Platform::virtex7_adm7v3(),
//!     &workload,
//!     &config,
//!     SimOptions::default(),
//! )?;
//! println!("system run: {} cycles", measured.cycles);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod perturb;

pub use engine::{system_run, SimError, SimOptions, SimResult};
