//! The System Run simulator.
//!
//! This plays the role of the paper's ground truth: the kernel synthesized
//! by SDAccel, flashed and measured on the board. It executes the design
//! *mechanistically* — per-operation implementation variance, a behavioural
//! banked DRAM with open-row state shared across compute units, serialized
//! per-CU AXI burst engines, round-robin work-group dispatch with jittered
//! overhead — rather than evaluating the closed-form FlexCL equations, so
//! the analytical model's error against it is a genuine quantity.

use crate::perturb::{perturb_graph, sample_aggregate_factor};
use flexcl_core::analysis::{trace_to_group_bursts, OwnedBurst};
use flexcl_core::CommMode;
use flexcl_core::{estimate, pe_budget, FlexclError, KernelAnalysis, OptimizationConfig,
    Platform, Workload};
use flexcl_dram::{AccessKind, DramSim, Request};
use flexcl_interp::{run, KernelArg, NdRange, RunOptions};
use flexcl_ir::Function;
use flexcl_sched::sms;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::fmt;

/// Options for a simulated system run.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Seed of the synthesis-variance RNG (a given bitstream is fixed; a
    /// given seed is too).
    pub seed: u64,
    /// Refuse to simulate more work-items than this (runaway protection).
    pub max_work_items: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { seed: 0xF1E2C, max_work_items: 1 << 20 }
    }
}

/// Result of a system run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Measured kernel execution time in cycles.
    pub cycles: f64,
    /// Work-groups executed.
    pub groups: u64,
    /// The initiation interval realised by the synthesized pipeline.
    pub ii: u32,
    /// The realised pipeline depth.
    pub depth: u32,
    /// Compute share of `cycles` along the critical CU's timeline.
    /// `comp_cycles + mem_cycles + overhead_cycles == cycles`, mirroring the
    /// decomposition on [`flexcl_core::Estimate`] so model-vs-sim divergence
    /// can be attributed per component.
    pub comp_cycles: f64,
    /// DRAM stall share of `cycles` along the critical CU's timeline.
    pub mem_cycles: f64,
    /// Dispatch and launch overhead share of `cycles`.
    pub overhead_cycles: f64,
}

impl SimResult {
    /// Wall-clock seconds at `frequency_mhz`.
    pub fn seconds(&self, frequency_mhz: f64) -> f64 {
        flexcl_core::cycles_to_seconds(self.cycles, frequency_mhz)
    }
}

/// System-run failures.
#[derive(Debug)]
pub enum SimError {
    /// The design does not fit the device (synthesis would fail).
    Infeasible(String),
    /// Kernel analysis / execution failed.
    Analysis(FlexclError),
    /// The workload exceeds the simulation budget.
    TooLarge(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Infeasible(r) => write!(f, "design infeasible: {r}"),
            SimError::Analysis(e) => write!(f, "{e}"),
            SimError::TooLarge(n) => write!(f, "workload of {n} work-items exceeds budget"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<FlexclError> for SimError {
    fn from(e: FlexclError) -> Self {
        SimError::Analysis(e)
    }
}

/// Simulates a full kernel execution ("System Run").
///
/// # Errors
///
/// Returns [`SimError`] when the design is infeasible, the workload too
/// large, or execution fails.
pub fn system_run(
    func: &Function,
    platform: &Platform,
    workload: &Workload,
    config: &OptimizationConfig,
    opts: SimOptions,
) -> Result<SimResult, SimError> {
    if workload.total_work_items() > opts.max_work_items {
        return Err(SimError::TooLarge(workload.total_work_items()));
    }
    let analysis = KernelAnalysis::analyze(func, platform, workload, config.work_group)?;
    let est = estimate(&analysis, config)?;
    if !est.feasible {
        return Err(SimError::Infeasible(
            est.infeasible_reason
                .map(|r| r.to_string())
                .unwrap_or_else(|| "resources exceeded".into()),
        ));
    }

    let mut rng = StdRng::seed_from_u64(
        opts.seed ^ (config_hash(config)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );

    // ---- synthesized pipeline parameters (perturbed) -------------------
    let budget = pe_budget(&analysis, config);
    let (ii_base, depth_base) = if config.work_item_pipeline {
        let (g, _) = analysis.work_item_graph(&budget)?;
        let pg = perturb_graph(&g, &mut rng);
        let floor = (analysis.work_item_latency(&budget)?
            * sample_aggregate_factor(&mut rng, g.len()))
        .round() as u32;
        let s = sms::schedule(&pg, &budget, floor);
        (s.ii.max(analysis.rec_mii()).max(analysis.res_mii(&budget)), s.depth)
    } else {
        let d = (analysis.work_item_latency(&budget)?
            * sample_aggregate_factor(&mut rng, analysis.func.insts.len()))
        .round()
        .max(1.0) as u32;
        (d, d)
    };
    // Thread coarsening re-derives the synthesized pipeline from the
    // *perturbed* base parameters — the same analytical relation the model
    // uses, applied to this "synthesis run"'s schedule. Pass-through at
    // cf == 1.
    let cf = config.coarsen_factor.max(1);
    let tb = config.temporal_block_depth.max(1);
    let (ii_sim, depth_sim) = if cf > 1 {
        if config.work_item_pipeline {
            flexcl_core::model::coarsened_pipeline_params(&analysis, ii_base, depth_base, cf)
        } else {
            let d = ii_base.saturating_mul(cf).max(1);
            (d, d)
        }
    } else {
        (ii_base, depth_base)
    };

    // ---- full execution trace ------------------------------------------
    let nd = NdRange {
        global: [workload.global.0, workload.global.1, 1],
        local: [u64::from(config.work_group.0), u64::from(config.work_group.1), 1],
    };
    let mut args: Vec<KernelArg> = workload.args.clone();
    let profile = run(func, &mut args, nd, RunOptions::default()).map_err(|e| {
        SimError::Analysis(FlexclError::Profiling {
            kernel: func.name.clone(),
            work_group: config.work_group,
            source: e,
        })
    })?;

    // Shared representation with the analytical model: per-group coalesced
    // bursts in work-item order. Coarsening merges the trace exactly as the
    // analysis does (dedupe per coarse item, re-coalesce) — the merged
    // stream IS the memory behaviour of the coarsened design.
    let unit_bytes = platform.mem_access_unit_bits / 8;
    let trace = flexcl_core::coarsen_trace(&profile.trace, cf);
    let group_bursts: std::collections::HashMap<u64, Vec<OwnedBurst>> =
        trace_to_group_bursts(&trace, unit_bytes).into_iter().collect();

    // ---- execution -------------------------------------------------------
    let n_groups = nd.num_groups();
    let wg_size = nd.work_group_size();
    let n_pe = u64::from(est.n_pe.max(1));
    // A CU issues coarse items (`cf` divides the work-group size).
    let wg_items = wg_size / u64::from(cf);
    // Temporal blocking fuses `tb` stencil steps per tile: memory streams
    // once per block, step k computes over a halo-expanded tile (rho_k ×
    // the items), and the block's time amortizes over its steps at the end.
    let rho = flexcl_core::model::temporal_step_redundancy(analysis.work_group, analysis.global, tb);
    let comp_phase = |items: u64| -> f64 {
        if config.work_item_pipeline {
            let waves = ((items.saturating_sub(n_pe)) as f64 / n_pe as f64).ceil();
            f64::from(ii_sim) * waves + f64::from(depth_sim)
        } else {
            (items as f64 / n_pe as f64).ceil() * f64::from(depth_sim)
        }
    };
    let items0 = (wg_items as f64 * rho[0]).ceil() as u64;
    // Steps after the first run out of on-chip buffers — pure compute.
    let extra_comp: f64 =
        rho[1..].iter().map(|&r| comp_phase((wg_items as f64 * r).ceil() as u64)).sum();
    // One DRAM state per CU. Groups are simulated sequentially, so sharing
    // bank state across concurrently-running CUs would let a group's
    // *later* writes block another CU's *earlier* reads — an ordering
    // artifact, not contention. Real multi-bank DDR interleaves
    // independent streams; per-CU state models that correctly.
    let mut channels: Vec<DramSim> = (0..config.num_cus.max(1) as usize)
        .map(|_| DramSim::new(platform.dram))
        .collect();
    let mut cu_free = vec![0f64; config.num_cus.max(1) as usize];
    let mut cu_warm = vec![false; cu_free.len()];
    // Per-CU timeline decomposition: dispatch overhead, compute, and DRAM
    // stall cycles sum to that CU's finish time.
    let mut cu_comp = vec![0f64; cu_free.len()];
    let mut cu_mem = vec![0f64; cu_free.len()];
    let mut cu_overhead = vec![0f64; cu_free.len()];
    let empty: Vec<OwnedBurst> = Vec::new();

    for g in 0..n_groups {
        // Round-robin onto the earliest-free CU. The scheduler prepares the
        // next work-group while the current one drains, so a warm CU pays
        // only a fraction of the dispatch overhead; a cold CU pays it all.
        let (cu_idx, _) = cu_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one CU");
        let jitter = rng.gen_range(0.85..1.25);
        let overhead_frac = if cu_warm[cu_idx] {
            (1.0 - platform.dispatch_overlap).max(0.0)
        } else {
            1.0
        };
        cu_warm[cu_idx] = true;
        let dispatch = f64::from(platform.schedule_overhead) * jitter * overhead_frac;
        let start = cu_free[cu_idx] + dispatch;

        let bursts: &[OwnedBurst] = group_bursts.get(&g).map_or(&empty, Vec::as_slice);
        let dram = &mut channels[cu_idx];
        // SDAccel-era CUs funnel global memory through a single AXI
        // interface; bursts serialize per CU (matching the serial Eq. 9
        // assumption of the model — the model's error against this sim
        // comes from per-access bank state, not from engine topology).
        let engines = 1usize;
        let (end, comp) = match config.comm_mode {
            CommMode::Barrier => simulate_barrier_group(
                start,
                bursts,
                comp_phase(items0) + extra_comp,
                dram,
                engines,
            ),
            CommMode::Pipeline => simulate_pipeline_group(
                start, bursts, items0, n_pe, ii_sim, depth_sim, extra_comp, dram, engines,
            ),
        };
        cu_overhead[cu_idx] += dispatch;
        cu_comp[cu_idx] += comp;
        cu_mem[cu_idx] += (end - start - comp).max(0.0);
        cu_free[cu_idx] = end;
    }

    let (crit, crit_free) = cu_free
        .iter()
        .copied()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("at least one CU");
    // A temporal block stands in for `tb` kernel invocations: every
    // component amortizes by `/tb` so the result stays comparable with
    // unblocked runs (exact division by 1.0 otherwise).
    let tbf = f64::from(tb);
    let cycles = (crit_free + f64::from(platform.launch_overhead)) / tbf;
    Ok(SimResult {
        cycles,
        groups: n_groups,
        ii: ii_sim,
        depth: depth_sim,
        comp_cycles: cu_comp[crit] / tbf,
        mem_cycles: cu_mem[crit] / tbf,
        overhead_cycles: (cu_overhead[crit] + f64::from(platform.launch_overhead)) / tbf,
    })
}

/// Barrier mode: the CU streams the group's reads through its AXI engine,
/// computes (`comp` covers every fused temporal step), then streams the
/// writes. Engine requests serialize; banks are shared with other CUs
/// through the common DRAM state.
///
/// Returns `(end, comp)` — the finish time and the pure compute component
/// of the group's occupancy (`end - start - comp` is its DRAM stall).
fn simulate_barrier_group(
    start: f64,
    bursts: &[OwnedBurst],
    comp: f64,
    dram: &mut DramSim,
    engines: usize,
) -> (f64, f64) {
    let mut engine_free = vec![start; engines];
    for (i, b) in bursts.iter().filter(|b| b.burst.kind == AccessKind::Read).enumerate() {
        let slot = i % engines;
        let info = dram.access(Request {
            addr: b.burst.addr,
            bytes: b.burst.bytes,
            kind: AccessKind::Read,
            arrival: engine_free[slot].round() as u64,
        });
        engine_free[slot] = info.finish as f64;
    }
    let mut t = engine_free.iter().copied().fold(start, f64::max);
    // Computation phase (all temporal steps back to back).
    t += comp;
    let mut engine_free = vec![t; engines];
    for (i, b) in bursts.iter().filter(|b| b.burst.kind == AccessKind::Write).enumerate() {
        let slot = i % engines;
        let info = dram.access(Request {
            addr: b.burst.addr,
            bytes: b.burst.bytes,
            kind: AccessKind::Write,
            arrival: engine_free[slot].round() as u64,
        });
        engine_free[slot] = info.finish as f64;
    }
    (engine_free.iter().copied().fold(t, f64::max), comp)
}

/// Pipeline mode: the CU's burst engine streams the group's transactions
/// ahead of the pipeline; an item wave can only initiate once the bursts
/// it owns have returned. Initiation otherwise advances every `ii` cycles
/// — the mechanistic counterpart of Eq. 12: the effective interval is
/// whichever of computation and memory is slower. `wg_size` counts the
/// issuable items of the first fused step (coarse items × its halo
/// expansion); `extra_comp` appends the remaining temporal steps, which
/// run out of on-chip buffers after the stream.
/// Returns `(end, comp)`; `comp` is the stall-free pipeline time
/// `ii * (waves - 1) + depth` plus `extra_comp`, a floor on the group's
/// occupancy.
#[allow(clippy::too_many_arguments)]
fn simulate_pipeline_group(
    start: f64,
    bursts: &[OwnedBurst],
    wg_size: u64,
    n_pe: u64,
    ii: u32,
    depth: u32,
    extra_comp: f64,
    dram: &mut DramSim,
    engines: usize,
) -> (f64, f64) {
    // Stream all bursts through the engines (prefetch order = work-item
    // order, engines round-robin), recording when each owning work-item's
    // data is ready.
    let mut engine_free = vec![start; engines];
    let mut owner_ready: Vec<(u64, f64)> = Vec::new(); // (owner wi, ready)
    for (i, b) in bursts.iter().enumerate() {
        let slot = i % engines;
        let info = dram.access(Request {
            addr: b.burst.addr,
            bytes: b.burst.bytes,
            kind: b.burst.kind,
            arrival: engine_free[slot].round() as u64,
        });
        engine_free[slot] = info.finish as f64;
        let ready = engine_free[slot];
        match owner_ready.last_mut() {
            Some((wi, r)) if *wi == b.work_item => *r = r.max(ready),
            _ => owner_ready.push((b.work_item, ready)),
        }
    }
    owner_ready.sort_by_key(|(wi, _)| *wi);

    // Approximate each owner's rank inside the group by its position among
    // owners scaled to the group size (burst owners are evenly strided for
    // coalesced kernels; uncoalesced kernels have one owner per work-item,
    // making this exact).
    let n_owners = owner_ready.len() as u64;
    let stride = if n_owners == 0 { 1 } else { (wg_size / n_owners).max(1) };
    let waves = wg_size.div_ceil(n_pe.max(1));

    let mut issue = start;
    let mut oi = 0usize;
    for w in 0..waves {
        let mut t = if w == 0 { start } else { issue + f64::from(ii) };
        while oi < owner_ready.len() && (oi as u64 * stride) / n_pe.max(1) <= w {
            t = t.max(owner_ready[oi].1);
            oi += 1;
        }
        issue = t;
    }
    // Stragglers (rank estimate overflowed the wave count).
    for (_, r) in &owner_ready[oi..] {
        issue = issue.max(*r);
    }
    let comp =
        f64::from(ii) * (waves.saturating_sub(1)) as f64 + f64::from(depth) + extra_comp;
    (issue + f64::from(depth) + extra_comp, comp)
}

/// Deterministic hash of a configuration (perturbations differ between
/// "synthesis runs" of different configurations, as on real toolchains).
fn config_hash(c: &OptimizationConfig) -> u64 {
    let mut h = 1469598103934665603u64;
    for v in [
        u64::from(c.work_group.0),
        u64::from(c.work_group.1),
        u64::from(c.work_item_pipeline),
        u64::from(c.num_pes),
        u64::from(c.num_cus),
        u64::from(c.vector_width),
        matches!(c.comm_mode, CommMode::Pipeline) as u64,
    ] {
        h ^= v;
        h = h.wrapping_mul(1099511628211);
    }
    // The new axes fold in ONLY away from their identity values, so every
    // pre-axis configuration keeps its exact historical hash (and thus its
    // perturbation seed — committed sim baselines stay valid). Distinct
    // salts keep cf=2 and tb=2 from colliding.
    if c.coarsen_factor > 1 {
        h ^= u64::from(c.coarsen_factor) ^ 0xC0A2_5EED;
        h = h.wrapping_mul(1099511628211);
    }
    if c.temporal_block_depth > 1 {
        h ^= u64::from(c.temporal_block_depth) ^ 0x7E3B_10C4;
        h = h.wrapping_mul(1099511628211);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vadd() -> (Function, Workload) {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void vadd(__global float* a, __global float* b, __global float* c) {
                int i = get_global_id(0);
                c[i] = a[i] + b[i];
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload {
            args: vec![
                KernelArg::FloatBuf(vec![1.0; 1024]),
                KernelArg::FloatBuf(vec![2.0; 1024]),
                KernelArg::FloatBuf(vec![0.0; 1024]),
            ],
            global: (1024, 1),
        };
        (f, w)
    }

    #[test]
    fn system_run_is_deterministic_per_seed() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let a = system_run(&f, &platform, &w, &cfg, SimOptions::default()).expect("run");
        let b = system_run(&f, &platform, &w, &cfg, SimOptions::default()).expect("run");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_vary_mildly() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let a = system_run(&f, &platform, &w, &cfg, SimOptions { seed: 1, ..Default::default() })
            .expect("run");
        let b = system_run(&f, &platform, &w, &cfg, SimOptions { seed: 2, ..Default::default() })
            .expect("run");
        let ratio = a.cycles / b.cycles;
        assert!(ratio > 0.5 && ratio < 2.0, "seeds diverge too much: {ratio}");
    }

    #[test]
    fn pipelining_speeds_up_the_system_too() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let base = OptimizationConfig::baseline((64, 1));
        let piped = OptimizationConfig { work_item_pipeline: true, ..base };
        let t0 = system_run(&f, &platform, &w, &base, SimOptions::default()).expect("run");
        let t1 = system_run(&f, &platform, &w, &piped, SimOptions::default()).expect("run");
        assert!(t1.cycles < t0.cycles);
    }

    #[test]
    fn model_matches_system_run_within_reason() {
        // The headline property: FlexCL's estimate lands near the measured
        // ground truth for a well-behaved kernel.
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        for cfg in [
            OptimizationConfig::baseline((64, 1)),
            OptimizationConfig {
                work_item_pipeline: true,
                ..OptimizationConfig::baseline((64, 1))
            },
            OptimizationConfig {
                work_item_pipeline: true,
                comm_mode: CommMode::Pipeline,
                num_cus: 2,
                ..OptimizationConfig::baseline((64, 1))
            },
        ] {
            let analysis =
                KernelAnalysis::analyze(&f, &platform, &w, cfg.work_group).expect("analysis");
            let est = estimate(&analysis, &cfg).expect("estimate");
            let sys = system_run(&f, &platform, &w, &cfg, SimOptions::default()).expect("run");
            let err = (est.cycles - sys.cycles).abs() / sys.cycles;
            assert!(
                err < 0.5,
                "config {cfg}: model {} vs system {} (err {:.1}%)",
                est.cycles,
                sys.cycles,
                err * 100.0
            );
        }
    }

    #[test]
    fn pipeline_mode_beats_barrier_mode_in_the_system_too() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let barrier = OptimizationConfig {
            work_item_pipeline: true,
            ..OptimizationConfig::baseline((64, 1))
        };
        let pipe = OptimizationConfig { comm_mode: CommMode::Pipeline, ..barrier };
        let tb = system_run(&f, &platform, &w, &barrier, SimOptions::default()).expect("run");
        let tp = system_run(&f, &platform, &w, &pipe, SimOptions::default()).expect("run");
        assert!(
            tp.cycles < tb.cycles,
            "overlapped transfers must win: pipeline {} vs barrier {}",
            tp.cycles,
            tb.cycles
        );
    }

    #[test]
    fn cu_replication_scales_in_the_system() {
        let (f, w) = vadd();
        let platform = Platform::virtex7_adm7v3();
        let mk = |c| OptimizationConfig {
            work_item_pipeline: true,
            comm_mode: CommMode::Pipeline,
            num_cus: c,
            ..OptimizationConfig::baseline((64, 1))
        };
        let t1 = system_run(&f, &platform, &w, &mk(1), SimOptions::default()).expect("run");
        let t2 = system_run(&f, &platform, &w, &mk(2), SimOptions::default()).expect("run");
        let speedup = t1.cycles / t2.cycles;
        assert!(
            speedup > 1.5 && speedup < 2.3,
            "C=2 should roughly halve runtime, got {speedup:.2}x"
        );
    }

    #[test]
    fn larger_workload_takes_longer() {
        let platform = Platform::virtex7_adm7v3();
        let p = flexcl_frontend::parse_and_check(
            "__kernel void inc(__global int* a) {
                int i = get_global_id(0);
                a[i] = a[i] + 1;
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let cfg = OptimizationConfig::baseline((64, 1));
        let small = Workload { args: vec![KernelArg::IntBuf(vec![0; 512])], global: (512, 1) };
        let big = Workload { args: vec![KernelArg::IntBuf(vec![0; 4096])], global: (4096, 1) };
        let ts = system_run(&f, &platform, &small, &cfg, SimOptions::default()).expect("run");
        let tb = system_run(&f, &platform, &big, &cfg, SimOptions::default()).expect("run");
        let ratio = (tb.cycles - 500.0) / (ts.cycles - 500.0); // strip launch
        assert!(ratio > 6.0 && ratio < 10.0, "8x work ~ 8x time, got {ratio:.1}");
    }

    #[test]
    fn infeasible_design_fails_like_synthesis() {
        let p = flexcl_frontend::parse_and_check(
            "__kernel void heavy(__global float* x) {
                int i = get_global_id(0);
                float v = x[i];
                v = exp(v) * log(v) * sin(v) * cos(v) * pow(v, 2.5f) * sqrt(v);
                v = v * exp(v * 2.0f) * log(v + 1.0f) * sin(v * 3.0f);
                x[i] = v;
            }",
        )
        .expect("frontend");
        let f = flexcl_ir::lower_kernel(&p.kernels[0]).expect("lowering");
        let w = Workload { args: vec![KernelArg::FloatBuf(vec![1.5; 256])], global: (256, 1) };
        let cfg = OptimizationConfig {
            work_item_pipeline: true,
            num_pes: 16,
            num_cus: 4,
            vector_width: 4,
            ..OptimizationConfig::baseline((64, 1))
        };
        let err = system_run(&f, &Platform::virtex7_adm7v3(), &w, &cfg, SimOptions::default())
            .unwrap_err();
        assert!(matches!(err, SimError::Infeasible(_)));
    }

    #[test]
    fn workload_budget_enforced() {
        let (f, w) = vadd();
        let cfg = OptimizationConfig::baseline((64, 1));
        let opts = SimOptions { max_work_items: 10, ..Default::default() };
        let err =
            system_run(&f, &Platform::virtex7_adm7v3(), &w, &cfg, opts).unwrap_err();
        assert!(matches!(err, SimError::TooLarge(_)));
    }
}
