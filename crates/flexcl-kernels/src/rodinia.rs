//! The 45 Rodinia kernels of Table 2.
//!
//! Each kernel reproduces its benchmark's computational idiom — access
//! patterns, loop structure, local-memory usage and math mix — in the
//! supported OpenCL subset, with input generators that keep every access
//! in bounds at both workload scales.

use crate::{fbuf, fzero, ibuf_mod, iflags, izero, KernelSpec, Suite};
use flexcl_interp::KernelArg;

/// Returns all 45 Rodinia kernel specs in Table 2 order.
pub fn all() -> Vec<KernelSpec> {
    vec![
        // ------------------------------------------------------- backprop
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "backprop",
            kernel: "layer",
            source: "__kernel void layer(__global float* input, __global float* weights,
                                         __global float* out, int n_in) {
                int j = get_global_id(0);
                int stride = get_global_size(0);
                float sum = 0.0f;
                for (int i = 0; i < n_in; i++) {
                    sum += input[i] * weights[i * stride + j];
                }
                out[j] = 1.0f / (1.0f + exp(-sum));
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let n_in = 32;
                vec![
                    fbuf(n_in, rng),
                    fbuf(n_in * nx, rng),
                    fzero(nx),
                    KernelArg::Int(n_in as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "backprop",
            kernel: "adjust",
            source: "__kernel void adjust(__global float* w, __global float* delta,
                                          __global float* x, float lr, int n_in) {
                int j = get_global_id(0);
                int stride = get_global_size(0);
                for (int i = 0; i < n_in; i++) {
                    w[i * stride + j] += lr * delta[j] * x[i];
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let n_in = 32;
                vec![
                    fbuf(n_in * nx, rng),
                    fbuf(nx, rng),
                    fbuf(n_in, rng),
                    KernelArg::Float(0.01),
                    KernelArg::Int(n_in as i64),
                ]
            },
        },
        // ------------------------------------------------------------ bfs
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "bfs",
            kernel: "bfs_1",
            source: "__kernel void bfs_1(__global int* starts, __global int* edges,
                                         __global int* frontier, __global int* visited,
                                         __global int* cost, __global int* updating) {
                int tid = get_global_id(0);
                if (frontier[tid] == 1) {
                    frontier[tid] = 0;
                    int first = starts[tid];
                    int last = starts[tid + 1];
                    for (int i = first; i < last; i++) {
                        int id = edges[i];
                        if (visited[id] == 0) {
                            cost[id] = cost[tid] + 1;
                            updating[id] = 1;
                        }
                    }
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let deg = 4;
                vec![
                    KernelArg::IntBuf((0..=nx).map(|i| (i * deg) as i64).collect()),
                    ibuf_mod(nx * deg, nx as i64, rng),
                    iflags(nx, 0.2, rng),
                    iflags(nx, 0.3, rng),
                    izero(nx),
                    izero(nx),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "bfs",
            kernel: "bfs_2",
            source: "__kernel void bfs_2(__global int* updating, __global int* frontier,
                                         __global int* visited, __global int* stop) {
                int tid = get_global_id(0);
                if (updating[tid] == 1) {
                    updating[tid] = 0;
                    frontier[tid] = 1;
                    visited[tid] = 1;
                    stop[0] = 1;
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![iflags(nx, 0.3, rng), izero(nx), izero(nx), izero(1)]
            },
        },
        // --------------------------------------------------------- b+tree
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "b+tree",
            kernel: "findK",
            source: "__kernel void findK(__global int* knodes, __global int* keys,
                                         __global int* answers, int order, int levels) {
                int tid = get_global_id(0);
                int key = keys[tid];
                int node = 0;
                for (int lvl = 0; lvl < levels; lvl++) {
                    int next = 0;
                    for (int k = 0; k < order; k++) {
                        if (knodes[node * order + k] <= key) { next = next + 1; }
                    }
                    node = node * order + next;
                }
                answers[tid] = node;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let (order, levels) = (4i64, 3i64);
                // node < (order+1)^levels · order; size generously.
                let knodes = 4096 * order as u64;
                vec![
                    ibuf_mod(knodes, 1000, rng),
                    ibuf_mod(nx, 1000, rng),
                    izero(nx),
                    KernelArg::Int(order),
                    KernelArg::Int(levels),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "b+tree",
            kernel: "rangeK",
            source: "__kernel void rangeK(__global int* knodes, __global int* lo,
                                          __global int* hi, __global int* counts, int order,
                                          int levels) {
                int tid = get_global_id(0);
                int a = lo[tid];
                int b = hi[tid];
                int node = 0;
                int found = 0;
                for (int lvl = 0; lvl < levels; lvl++) {
                    int next = 0;
                    for (int k = 0; k < order; k++) {
                        int v = knodes[node * order + k];
                        if (v >= a && v <= b) { found = found + 1; }
                        if (v <= a) { next = next + 1; }
                    }
                    node = node * order + next;
                }
                counts[tid] = found;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let (order, levels) = (4i64, 3i64);
                let knodes = 4096 * order as u64;
                vec![
                    ibuf_mod(knodes, 1000, rng),
                    ibuf_mod(nx, 500, rng),
                    KernelArg::IntBuf((0..nx).map(|_| 500 + (nx as i64 % 400)).collect()),
                    izero(nx),
                    KernelArg::Int(order),
                    KernelArg::Int(levels),
                ]
            },
        },
        // ------------------------------------------------------------ cfd
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "cfd",
            kernel: "memset",
            source: "__kernel void memset(__global float* v) {
                int i = get_global_id(0);
                v[i] = 0.0f;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| vec![fbuf(nx, rng)],
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "cfd",
            kernel: "initialize",
            source: "__kernel void initialize(__global float* density, __global float* momentum,
                                              __global float* energy, float ff_density,
                                              float ff_mach) {
                int i = get_global_id(0);
                density[i] = ff_density;
                momentum[i * 3] = ff_density * ff_mach;
                momentum[i * 3 + 1] = 0.0f;
                momentum[i * 3 + 2] = 0.0f;
                energy[i] = ff_density * (0.5f * ff_mach * ff_mach + 2.5f);
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, _rng| {
                vec![fzero(nx), fzero(nx * 3), fzero(nx), KernelArg::Float(1.4), KernelArg::Float(0.3)]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "cfd",
            kernel: "compute",
            source: "__kernel void compute(__global float* density, __global float* energy,
                                           __global int* neighbors, __global float* fluxes,
                                           int n) {
                int i = get_global_id(0);
                float flux = 0.0f;
                float d = density[i];
                float e = energy[i];
                float pressure = 0.4f * (e - 0.5f * d);
                for (int j = 0; j < 4; j++) {
                    int nb = neighbors[i * 4 + j];
                    if (nb >= 0 && nb < n) {
                        float dn = density[nb];
                        float en = energy[nb];
                        float pn = 0.4f * (en - 0.5f * dn);
                        float speed = sqrt(fabs(pn / (dn + 0.001f)));
                        flux += speed * (pressure - pn);
                    }
                }
                fluxes[i] = flux;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx, rng),
                    fbuf(nx, rng),
                    ibuf_mod(nx * 4, nx as i64, rng),
                    fzero(nx),
                    KernelArg::Int(nx as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "cfd",
            kernel: "time_step",
            source: "__kernel void time_step(__global float* density, __global float* fluxes,
                                             float factor) {
                int i = get_global_id(0);
                density[i] = density[i] + factor * fluxes[i];
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx, rng), fbuf(nx, rng), KernelArg::Float(0.2)]
            },
        },
        // ---------------------------------------------------------- dwt2d
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "dwt2d",
            kernel: "compute",
            source: "__kernel void compute(__global float* src, __global float* low,
                                           __global float* high, int n) {
                int i = get_global_id(0);
                int even = 2 * i;
                if (even + 1 < n) {
                    float a = src[even];
                    float b = src[even + 1];
                    low[i] = (a + b) * 0.70710678f;
                    high[i] = (a - b) * 0.70710678f;
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(2 * nx, rng), fzero(nx), fzero(nx), KernelArg::Int((2 * nx) as i64)]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "dwt2d",
            kernel: "components",
            source: "__kernel void components(__global uchar* rgb, __global float* r,
                                              __global float* g, __global float* b) {
                int i = get_global_id(0);
                r[i] = (float)rgb[i * 3] - 128.0f;
                g[i] = (float)rgb[i * 3 + 1] - 128.0f;
                b[i] = (float)rgb[i * 3 + 2] - 128.0f;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![ibuf_mod(nx * 3, 256, rng), fzero(nx), fzero(nx), fzero(nx)]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "dwt2d",
            kernel: "component",
            source: "__kernel void component(__global uchar* rgb, __global float* y) {
                int i = get_global_id(0);
                float r = (float)rgb[i * 3];
                float g = (float)rgb[i * 3 + 1];
                float b = (float)rgb[i * 3 + 2];
                y[i] = 0.299f * r + 0.587f * g + 0.114f * b - 128.0f;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| vec![ibuf_mod(nx * 3, 256, rng), fzero(nx)],
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "dwt2d",
            kernel: "fdwt",
            source: "__kernel __attribute__((reqd_work_group_size(8, 8, 1)))
                void fdwt(__global float* img, __global float* out, int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                __local float tile[8][33];
                int lx = get_local_id(0);
                int ly = get_local_id(1);
                tile[ly][lx] = img[y * w + x];
                barrier(CLK_LOCAL_MEM_FENCE);
                float center = tile[ly][lx];
                float left = center;
                if (lx > 0) { left = tile[ly][lx - 1]; }
                out[y * w + x] = center - 0.5f * left;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                ]
            },
        },
        // ------------------------------------------------------- gaussian
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "gaussian",
            kernel: "fan1",
            source: "__kernel void fan1(__global float* a, __global float* m, int size, int t) {
                int i = get_global_id(0);
                if (i < size - 1 - t) {
                    m[size * (i + t + 1) + t] =
                        a[size * (i + t + 1) + t] / a[size * t + t];
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                // Treat the matrix as (nx+2)² to keep all indices in range.
                let size = nx + 2;
                vec![
                    fbuf(size * size, rng),
                    fzero(size * size),
                    KernelArg::Int(size as i64),
                    KernelArg::Int(1),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "gaussian",
            kernel: "fan2",
            source: "__kernel void fan2(__global float* a, __global float* b, __global float* m,
                                        int size, int t) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                if (x < size - 1 - t && y < size - t) {
                    a[size * (x + 1 + t) + (y + t)] -=
                        m[size * (x + 1 + t) + t] * a[size * t + (y + t)];
                    if (y == 0) {
                        b[x + 1 + t] -= m[size * (x + 1 + t) + t] * b[t];
                    }
                }
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                let size = nx.max(ny) + 2;
                vec![
                    fbuf(size * size, rng),
                    fbuf(size, rng),
                    fbuf(size * size, rng),
                    KernelArg::Int(size as i64),
                    KernelArg::Int(1),
                ]
            },
        },
        // -------------------------------------------------------- hotspot
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "hotspot",
            kernel: "hotspot",
            source: "__kernel void hotspot(__global float* temp, __global float* power,
                                           __global float* out, int w, int h, float cap,
                                           float rx, float ry, float rz) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                float c = temp[i];
                float n = c;
                float s = c;
                float e = c;
                float wv = c;
                if (y > 0) { n = temp[i - w]; }
                if (y < h - 1) { s = temp[i + w]; }
                if (x > 0) { wv = temp[i - 1]; }
                if (x < w - 1) { e = temp[i + 1]; }
                float delta = cap * (power[i] + (n + s - 2.0f * c) * ry
                              + (e + wv - 2.0f * c) * rx + (80.0f - c) * rz);
                out[i] = c + delta;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                    KernelArg::Float(0.5),
                    KernelArg::Float(0.1),
                    KernelArg::Float(0.1),
                    KernelArg::Float(0.05),
                ]
            },
        },
        // ------------------------------------------------------ hotspot3D
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "hotspot3D",
            kernel: "hotspot3D",
            source: "__kernel void hotspot3D(__global float* tin, __global float* power,
                                             __global float* tout, int nx, int ny, int layers,
                                             float cc, float cn, float ct) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                for (int z = 0; z < layers; z++) {
                    int i = z * nx * ny + y * nx + x;
                    float c = tin[i];
                    float w = c;
                    float e = c;
                    float n = c;
                    float s = c;
                    float b = c;
                    float t = c;
                    if (x > 0) { w = tin[i - 1]; }
                    if (x < nx - 1) { e = tin[i + 1]; }
                    if (y > 0) { n = tin[i - nx]; }
                    if (y < ny - 1) { s = tin[i + nx]; }
                    if (z > 0) { b = tin[i - nx * ny]; }
                    if (z < layers - 1) { t = tin[i + nx * ny]; }
                    tout[i] = c * cc + (n + s + e + w) * cn + (t + b) * ct + power[i] * 0.1f;
                }
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                let layers = 4;
                vec![
                    fbuf(nx * ny * layers, rng),
                    fbuf(nx * ny * layers, rng),
                    fzero(nx * ny * layers),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                    KernelArg::Int(layers as i64),
                    KernelArg::Float(0.5),
                    KernelArg::Float(0.1),
                    KernelArg::Float(0.05),
                ]
            },
        },
        // ----------------------------------------------------- hybridsort
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "hybridsort",
            kernel: "count",
            source: "__kernel void count(__global float* input, __global int* histo,
                                         float minv, float maxv, int buckets) {
                int i = get_global_id(0);
                float v = input[i];
                int b = (int)((v - minv) / (maxv - minv) * (float)buckets);
                b = min(b, buckets - 1);
                b = max(b, 0);
                histo[b] += 1;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx, rng),
                    izero(64),
                    KernelArg::Float(0.0),
                    KernelArg::Float(2.0),
                    KernelArg::Int(64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "hybridsort",
            kernel: "prefix",
            source: "__kernel void prefix(__global int* histo, __global int* offsets,
                                          int buckets) {
                int i = get_global_id(0);
                int sum = 0;
                for (int j = 0; j < buckets; j++) {
                    if (j < i) { sum += histo[j]; }
                }
                offsets[i] = sum;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![ibuf_mod(nx, 16, rng), izero(nx), KernelArg::Int(64)]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "hybridsort",
            kernel: "sort",
            source: "__kernel void sort(__global float* input, __global float* output, int n) {
                int i = get_global_id(0);
                float v = input[i];
                int rank = 0;
                for (int j = 0; j < 64; j++) {
                    int idx = (i / 64) * 64 + j;
                    float o = input[idx];
                    if (o < v || (o == v && idx < i)) { rank = rank + 1; }
                }
                output[(i / 64) * 64 + rank] = v;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx, rng), fzero(nx), KernelArg::Int(nx as i64)]
            },
        },
        // --------------------------------------------------------- kmeans
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "kmeans",
            kernel: "center",
            source: "__kernel void center(__global float* points, __global float* centroids,
                                          __global int* membership, int k, int dims) {
                int i = get_global_id(0);
                float best = 1e30f;
                int best_k = 0;
                for (int c = 0; c < k; c++) {
                    float dist = 0.0f;
                    #pragma unroll 4
                    for (int d = 0; d < dims; d++) {
                        float diff = points[i * dims + d] - centroids[c * dims + d];
                        dist += diff * diff;
                    }
                    if (dist < best) { best = dist; best_k = c; }
                }
                membership[i] = best_k;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let (k, dims) = (8u64, 4u64);
                vec![
                    fbuf(nx * dims, rng),
                    fbuf(k * dims, rng),
                    izero(nx),
                    KernelArg::Int(k as i64),
                    KernelArg::Int(dims as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "kmeans",
            kernel: "swap",
            source: "__kernel void swap(__global float* points, __global float* points_t,
                                        int n, int dims) {
                int i = get_global_id(0);
                for (int d = 0; d < dims; d++) {
                    points_t[d * n + i] = points[i * dims + d];
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let dims = 4u64;
                vec![
                    fbuf(nx * dims, rng),
                    fzero(nx * dims),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(dims as i64),
                ]
            },
        },
        // --------------------------------------------------------- lavaMD
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "lavaMD",
            kernel: "lavaMD",
            source: "__kernel void lavaMD(__global float* pos, __global float* charge,
                                          __global float* force, int per_box, float a2) {
                int i = get_global_id(0);
                int box = i / per_box;
                float fx = 0.0f;
                float px = pos[i * 3];
                float py = pos[i * 3 + 1];
                float pz = pos[i * 3 + 2];
                #pragma pipeline
                for (int j = 0; j < per_box; j++) {
                    int o = box * per_box + j;
                    float dx = px - pos[o * 3];
                    float dy = py - pos[o * 3 + 1];
                    float dz = pz - pos[o * 3 + 2];
                    float r2 = dx * dx + dy * dy + dz * dz + 0.01f;
                    float u2 = a2 * r2;
                    float vij = exp(-u2) * charge[o];
                    fx += dx * vij;
                }
                force[i] = fx;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * 3, rng),
                    fbuf(nx, rng),
                    fzero(nx),
                    KernelArg::Int(16),
                    KernelArg::Float(0.5),
                ]
            },
        },
        // ------------------------------------------------------ leukocyte
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "leukocyte",
            kernel: "gicov",
            source: "__kernel void gicov(__global float* grad_x, __global float* grad_y,
                                         __global float* gicov_out, int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                float sum = 0.0f;
                float m = 0.0f;
                for (int k = 0; k < 8; k++) {
                    float gx = grad_x[i];
                    float gy = grad_y[i];
                    float d = gx * cos(0.785f * (float)k) + gy * sin(0.785f * (float)k);
                    sum += d * d;
                    m += d;
                }
                m = m / 8.0f;
                float var = sum / 8.0f - m * m;
                gicov_out[i] = m * m / (var + 0.001f);
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "leukocyte",
            kernel: "dilate",
            source: "__kernel void dilate(__global float* img, __global float* out, int w,
                                          int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                float best = 0.0f;
                for (int dy = -1; dy <= 1; dy++) {
                    for (int dx = -1; dx <= 1; dx++) {
                        int xx = x + dx;
                        int yy = y + dy;
                        if (xx >= 0 && xx < w && yy >= 0 && yy < h) {
                            best = fmax(best, img[yy * w + xx]);
                        }
                    }
                }
                out[y * w + x] = best;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "leukocyte",
            kernel: "imgvf",
            source: "__kernel void imgvf(__global float* vf, __global float* out, int w, int h,
                                         float mu) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                float c = vf[i];
                float u = c;
                float d = c;
                float l = c;
                float r = c;
                if (y > 0) { u = vf[i - w]; }
                if (y < h - 1) { d = vf[i + w]; }
                if (x > 0) { l = vf[i - 1]; }
                if (x < w - 1) { r = vf[i + 1]; }
                float heaviside = 1.0f / (1.0f + exp(-c));
                out[i] = c + mu * (u + d + l + r - 4.0f * c) * heaviside;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                    KernelArg::Float(0.2),
                ]
            },
        },
        // ------------------------------------------------------------ lud
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "lud",
            kernel: "diagonal",
            source: "__kernel __attribute__((reqd_work_group_size(16, 1, 1)))
                void diagonal(__global float* m, int size, int offset) {
                int tid = get_global_id(0);
                __local float tile[16][17];
                int lid = get_local_id(0);
                for (int i = 0; i < 16; i++) {
                    tile[i][lid] = m[(offset + i) * size + offset + lid];
                }
                barrier(CLK_LOCAL_MEM_FENCE);
                float acc = tile[lid][lid];
                for (int k = 0; k < 16; k++) {
                    if (k < lid) { acc -= tile[lid][k] * tile[k][lid]; }
                }
                m[(offset + lid) * size + offset + lid] = acc + 0.0f * (float)tid;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let size = 64 + nx / 8;
                vec![fbuf(size * size, rng), KernelArg::Int(size as i64), KernelArg::Int(2)]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "lud",
            kernel: "perimeter",
            source: "__kernel void perimeter(__global float* m, __global float* out, int size,
                                             int offset) {
                int i = get_global_id(0);
                int row = i / 16;
                int col = i % 16;
                float acc = 0.0f;
                for (int k = 0; k < 16; k++) {
                    acc += m[(offset + row) * size + offset + k]
                         * m[(offset + k) * size + offset + col];
                }
                out[i] = acc;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let size = 64 + nx / 8;
                vec![
                    fbuf(size * size, rng),
                    fzero(nx),
                    KernelArg::Int(size as i64),
                    KernelArg::Int(4),
                ]
            },
        },
        // ------------------------------------------------------------- nn
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "nn",
            kernel: "nn",
            source: "__kernel void nn(__global float* lat, __global float* lng,
                                      __global float* dist, float target_lat,
                                      float target_lng) {
                int i = get_global_id(0);
                float dx = lat[i] - target_lat;
                float dy = lng[i] - target_lng;
                dist[i] = sqrt(dx * dx + dy * dy);
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx, rng), fbuf(nx, rng), fzero(nx), KernelArg::Float(0.7), KernelArg::Float(1.1)]
            },
        },
        // ------------------------------------------------------------- nw
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "nw",
            kernel: "nw1",
            source: "__kernel void nw1(__global int* similarity, __global int* matrix, int cols,
                                       int penalty, int diag) {
                int tid = get_global_id(0);
                int x = tid + 1;
                int y = diag - tid;
                if (y >= 1 && y < cols - 1 && x < cols - 1) {
                    int up = matrix[(y - 1) * cols + x];
                    int left = matrix[y * cols + (x - 1)];
                    int upleft = matrix[(y - 1) * cols + (x - 1)];
                    int a = upleft + similarity[y * cols + x];
                    int b = up - penalty;
                    int c = left - penalty;
                    int m = max(a, max(b, c));
                    matrix[y * cols + x] = m;
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let cols = nx + 2;
                vec![
                    ibuf_mod(cols * cols, 10, rng),
                    ibuf_mod(cols * cols, 20, rng),
                    KernelArg::Int(cols as i64),
                    KernelArg::Int(2),
                    KernelArg::Int((nx / 2) as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "nw",
            kernel: "nw2",
            source: "__kernel void nw2(__global int* similarity, __global int* matrix, int cols,
                                       int penalty, int diag) {
                int tid = get_global_id(0);
                int x = cols - 2 - tid;
                int y = diag - tid;
                if (x >= 1 && y >= 1 && y < cols - 1) {
                    int up = matrix[(y - 1) * cols + x];
                    int left = matrix[y * cols + (x - 1)];
                    int upleft = matrix[(y - 1) * cols + (x - 1)];
                    int m = max(upleft + similarity[y * cols + x],
                                max(up - penalty, left - penalty));
                    matrix[y * cols + x] = m;
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let cols = nx + 2;
                vec![
                    ibuf_mod(cols * cols, 10, rng),
                    ibuf_mod(cols * cols, 20, rng),
                    KernelArg::Int(cols as i64),
                    KernelArg::Int(2),
                    KernelArg::Int((nx / 2) as i64),
                ]
            },
        },
        // -------------------------------------------------- particlefilter
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "particlefilter",
            kernel: "find_index",
            source: "__kernel void find_index(__global float* cdf, __global float* u,
                                              __global int* indices, int n) {
                int i = get_global_id(0);
                float val = u[i];
                int idx = n - 1;
                for (int j = 0; j < n; j++) {
                    if (cdf[j] >= val && j < idx) { idx = j; }
                }
                indices[i] = idx;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let n = 64u64;
                vec![
                    KernelArg::FloatBuf((0..n).map(|i| (i + 1) as f64 / n as f64).collect()),
                    fbuf(nx, rng),
                    izero(nx),
                    KernelArg::Int(n as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "particlefilter",
            kernel: "normalize",
            source: "__kernel void normalize(__global float* weights, __global float* sum) {
                int i = get_global_id(0);
                weights[i] = weights[i] / sum[0];
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx, rng), KernelArg::FloatBuf(vec![8.0])]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "particlefilter",
            kernel: "sum",
            source: "__kernel void sum(__global float* weights, __global float* partial, int n,
                                       int chunk) {
                int i = get_global_id(0);
                float s = 0.0f;
                for (int j = 0; j < chunk; j++) {
                    int idx = i * chunk + j;
                    if (idx < n) { s += weights[idx]; }
                }
                partial[i] = s;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let chunk = 8;
                vec![
                    fbuf(nx * chunk, rng),
                    fzero(nx),
                    KernelArg::Int((nx * chunk) as i64),
                    KernelArg::Int(chunk as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "particlefilter",
            kernel: "likelihood",
            source: "__kernel void likelihood(__global float* arrayX, __global float* arrayY,
                                              __global float* likelihood_out,
                                              __global int* seed) {
                int i = get_global_id(0);
                int s = seed[i];
                s = (1103515245 * s + 12345) & 0x7fffffff;
                float rx = (float)(s % 1000) / 1000.0f - 0.5f;
                s = (1103515245 * s + 12345) & 0x7fffffff;
                float ry = (float)(s % 1000) / 1000.0f - 0.5f;
                seed[i] = s;
                float x = arrayX[i] + rx;
                float y = arrayY[i] + ry;
                likelihood_out[i] = exp(-(x * x + y * y) / 2.0f);
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx, rng), fbuf(nx, rng), fzero(nx), ibuf_mod(nx, 1 << 30, rng)]
            },
        },
        // ----------------------------------------------------- pathfinder
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "pathfinder",
            kernel: "dynproc",
            source: "__kernel void dynproc(__global int* wall, __global int* src,
                                           __global int* dst, int cols) {
                int i = get_global_id(0);
                int left = src[i];
                int center = src[i];
                int right = src[i];
                if (i > 0) { left = src[i - 1]; }
                if (i < cols - 1) { right = src[i + 1]; }
                int shortest = min(left, min(center, right));
                dst[i] = shortest + wall[i];
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    ibuf_mod(nx, 10, rng),
                    ibuf_mod(nx, 100, rng),
                    izero(nx),
                    KernelArg::Int(nx as i64),
                ]
            },
        },
        // ----------------------------------------------------------- srad
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "extract",
            source: "__kernel void extract(__global float* img, __global float* out) {
                int i = get_global_id(0);
                out[i] = exp(img[i] / 255.0f);
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| vec![fbuf(nx, rng), fzero(nx)],
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "prepare",
            source: "__kernel void prepare(__global float* img, __global float* sums,
                                           __global float* sums2) {
                int i = get_global_id(0);
                float v = img[i];
                sums[i] = v;
                sums2[i] = v * v;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| vec![fbuf(nx, rng), fzero(nx), fzero(nx)],
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "reduce",
            source: "__kernel void reduce(__global float* sums, __global float* out, int n,
                                          int chunk) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < chunk; j++) {
                    int idx = i * chunk + j;
                    if (idx < n) { acc += sums[idx]; }
                }
                out[i] = acc;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let chunk = 8;
                vec![
                    fbuf(nx * chunk, rng),
                    fzero(nx),
                    KernelArg::Int((nx * chunk) as i64),
                    KernelArg::Int(chunk as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "srad",
            source: "__kernel void srad(__global float* img, __global float* c_out,
                                        __global float* deriv, int w, int h, float q0) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                float jc = img[i];
                float jn = jc;
                float js = jc;
                float jw = jc;
                float je = jc;
                if (y > 0) { jn = img[i - w]; }
                if (y < h - 1) { js = img[i + w]; }
                if (x > 0) { jw = img[i - 1]; }
                if (x < w - 1) { je = img[i + 1]; }
                float dn = jn - jc;
                float ds = js - jc;
                float dw = jw - jc;
                float de = je - jc;
                float g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc + 0.0001f);
                float l = (dn + ds + dw + de) / (jc + 0.0001f);
                float num = 0.5f * g2 - 0.0625f * l * l;
                float den = 1.0f + 0.25f * l;
                float qsqr = num / (den * den + 0.0001f);
                float cval = 1.0f / (1.0f + (qsqr - q0) / (q0 * (1.0f + q0) + 0.0001f));
                c_out[i] = clamp(cval, 0.0f, 1.0f);
                deriv[i] = dn + ds + dw + de;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                    KernelArg::Float(0.5),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "srad2",
            source: "__kernel void srad2(__global float* img, __global float* c_in,
                                         __global float* deriv, __global float* out, int w,
                                         int h, float lambda) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                float cs = c_in[i];
                float ce = cs;
                if (y < h - 1) { cs = c_in[i + w]; }
                if (x < w - 1) { ce = c_in[i + 1]; }
                float d = c_in[i] * deriv[i] + cs * deriv[i] + ce * deriv[i];
                out[i] = img[i] + 0.25f * lambda * d;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fbuf(nx * ny, rng),
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                    KernelArg::Float(0.3),
                ]
            },
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "srad",
            kernel: "compress",
            source: "__kernel void compress(__global float* img) {
                int i = get_global_id(0);
                img[i] = log(img[i] + 1.0f) * 255.0f;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| vec![fbuf(nx, rng)],
        },
        // -------------------------------------------------- streamcluster
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "streamcluster",
            kernel: "memset",
            source: "__kernel void memset(__global int* flags, __global float* costs) {
                int i = get_global_id(0);
                flags[i] = 0;
                costs[i] = 0.0f;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, _rng| vec![izero(nx), fzero(nx)],
        },
        KernelSpec {
            suite: Suite::Rodinia,
            benchmark: "streamcluster",
            kernel: "pgain",
            source: "__kernel void pgain(__global float* points, __global float* center,
                                         __global float* costs, __global float* gain, int dims) {
                int i = get_global_id(0);
                float dist = 0.0f;
                for (int d = 0; d < dims; d++) {
                    float diff = points[i * dims + d] - center[d];
                    dist += diff * diff;
                }
                float delta = dist - costs[i];
                if (delta < 0.0f) { gain[i] = -delta; } else { gain[i] = 0.0f; }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                let dims = 8u64;
                vec![
                    fbuf(nx * dims, rng),
                    fbuf(dims, rng),
                    fbuf(nx, rng),
                    fzero(nx),
                    KernelArg::Int(dims as i64),
                ]
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_45_kernels() {
        assert_eq!(all().len(), 45);
    }

    #[test]
    fn all_sources_compile_and_lower() {
        for spec in all() {
            let program = flexcl_frontend::parse_and_check(spec.source)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
            let kernel = program
                .kernel(spec.kernel)
                .unwrap_or_else(|| panic!("{}: kernel not found", spec.full_name()));
            let func = flexcl_ir::lower_kernel(kernel)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
            assert_eq!(func.validate(), Ok(()), "{}", spec.full_name());
        }
    }

    #[test]
    fn all_workloads_execute_in_bounds() {
        use flexcl_interp::{run, NdRange, RunOptions};
        for spec in all() {
            let program = flexcl_frontend::parse_and_check(spec.source).expect("frontend");
            let func = flexcl_ir::lower_kernel(
                program.kernel(spec.kernel).expect("kernel"),
            )
            .expect("lowering");
            let w = spec.workload(crate::Scale::Test, 42);
            let mut args = w.args.clone();
            let local = match func.reqd_work_group_size {
                Some((x, y, z)) => [u64::from(x), u64::from(y), u64::from(z)],
                None if w.global.1 > 1 => [8, 8, 1],
                None => [64, 1, 1],
            };
            let nd = NdRange { global: [w.global.0, w.global.1, 1], local };
            run(&func, &mut args, nd, RunOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
        }
    }
}
