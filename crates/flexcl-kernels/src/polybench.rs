//! The 15 PolyBench kernels of the §4.2 evaluation.
//!
//! PolyBench kernels are dense linear algebra and regular stencils — the
//! "simpler structures, easy to analyze" workloads for which the paper
//! reports an 8.7% average error.

use crate::{fbuf, fzero, KernelSpec, Suite};
use flexcl_interp::KernelArg;

/// Matrix dimension used by the inner loops (constant per workload).
const K: u64 = 32;

fn mat_args_3(nx: u64, ny: u64, rng: &mut rand::rngs::StdRng) -> Vec<KernelArg> {
    vec![
        fbuf(nx.max(ny) * K, rng),
        fbuf(K * nx.max(ny), rng),
        fzero(nx * ny.max(1)),
        KernelArg::Int(K as i64),
    ]
}

/// Returns the 15 PolyBench kernel specs.
pub fn all() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "gemm",
            source: "__kernel void gemm(__global float* a, __global float* b,
                                        __global float* c, int k) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                int n = get_global_size(0);
                float acc = 0.0f;
                #pragma pipeline
                for (int p = 0; p < k; p++) {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = 1.2f * acc + 0.8f * c[i * n + j];
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fbuf(K * nx.max(ny), rng),
                    fbuf(nx * ny, rng),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "mm2",
            source: "__kernel void mm2(__global float* a, __global float* b,
                                       __global float* tmp, int k) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                int n = get_global_size(0);
                float acc = 0.0f;
                for (int p = 0; p < k; p++) {
                    acc += a[i * k + p] * b[p * n + j];
                }
                tmp[i * n + j] = acc;
            }",
            base_global: (32, 32),
            build_args: mat_args_3,
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "mm3",
            source: "__kernel void mm3(__global float* tmp, __global float* c,
                                       __global float* out, int k) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                int n = get_global_size(0);
                float acc = 0.0f;
                for (int p = 0; p < k; p++) {
                    acc += tmp[i * k + p] * c[p * n + j];
                }
                out[i * n + j] = acc;
            }",
            base_global: (32, 32),
            build_args: mat_args_3,
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "atax",
            source: "__kernel void atax(__global float* a, __global float* x,
                                        __global float* y, int k) {
                int i = get_global_id(0);
                float tmp = 0.0f;
                for (int j = 0; j < k; j++) {
                    tmp += a[i * k + j] * x[j];
                }
                float acc = 0.0f;
                for (int j = 0; j < k; j++) {
                    acc += a[i * k + j] * tmp;
                }
                y[i] = acc;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx * K, rng), fbuf(K, rng), fzero(nx), KernelArg::Int(K as i64)]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "bicg",
            source: "__kernel void bicg(__global float* a, __global float* p,
                                        __global float* r, __global float* q, int k) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < k; j++) {
                    acc += a[i * k + j] * p[j];
                }
                q[i] = acc + r[i % k];
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fbuf(K, rng),
                    fbuf(K, rng),
                    fzero(nx),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "mvt",
            source: "__kernel void mvt(__global float* a, __global float* y1,
                                       __global float* y2, __global float* x, int k) {
                int i = get_global_id(0);
                float acc = 0.0f;
                for (int j = 0; j < k; j++) {
                    acc += a[i * k + j] * y1[j] + a[i * k + j] * y2[j];
                }
                x[i] = x[i] + acc;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fbuf(K, rng),
                    fbuf(K, rng),
                    fbuf(nx, rng),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "gemver",
            source: "__kernel void gemver(__global float* a, __global float* u1,
                                          __global float* v1, __global float* u2,
                                          __global float* v2, __global float* out, int k) {
                int i = get_global_id(0);
                for (int j = 0; j < k; j++) {
                    out[i * k + j] = a[i * k + j] + u1[i % k] * v1[j] + u2[i % k] * v2[j];
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fbuf(K, rng),
                    fbuf(K, rng),
                    fbuf(K, rng),
                    fbuf(K, rng),
                    fzero(nx * K),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "gesummv",
            source: "__kernel void gesummv(__global float* a, __global float* b,
                                           __global float* x, __global float* y, int k) {
                int i = get_global_id(0);
                float t1 = 0.0f;
                float t2 = 0.0f;
                for (int j = 0; j < k; j++) {
                    t1 += a[i * k + j] * x[j];
                    t2 += b[i * k + j] * x[j];
                }
                y[i] = 1.5f * t1 + 1.2f * t2;
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fbuf(nx * K, rng),
                    fbuf(K, rng),
                    fzero(nx),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "syrk",
            source: "__kernel void syrk(__global float* a, __global float* c, int k) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                int n = get_global_size(0);
                float acc = c[i * n + j] * 0.9f;
                for (int p = 0; p < k; p++) {
                    acc += 1.1f * a[i * k + p] * a[j * k + p];
                }
                c[i * n + j] = acc;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx.max(ny) * K, rng),
                    fbuf(nx * ny, rng),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "syr2k",
            source: "__kernel void syr2k(__global float* a, __global float* b,
                                         __global float* c, int k) {
                int i = get_global_id(0);
                int j = get_global_id(1);
                int n = get_global_size(0);
                float acc = c[i * n + j] * 0.9f;
                for (int p = 0; p < k; p++) {
                    acc += a[i * k + p] * b[j * k + p] + b[i * k + p] * a[j * k + p];
                }
                c[i * n + j] = acc;
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx.max(ny) * K, rng),
                    fbuf(nx.max(ny) * K, rng),
                    fbuf(nx * ny, rng),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "correlation",
            source: "__kernel void correlation(__global float* data, __global float* mean,
                                               __global float* stddev, __global float* out,
                                               int k) {
                int i = get_global_id(0);
                float m = 0.0f;
                for (int j = 0; j < k; j++) { m += data[i * k + j]; }
                m = m / (float)k;
                float sd = 0.0f;
                for (int j = 0; j < k; j++) {
                    float d = data[i * k + j] - m;
                    sd += d * d;
                }
                mean[i] = m;
                stddev[i] = sqrt(sd / (float)k) + 0.0001f;
                out[i] = m / stddev[i];
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![
                    fbuf(nx * K, rng),
                    fzero(nx),
                    fzero(nx),
                    fzero(nx),
                    KernelArg::Int(K as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "covariance",
            source: "__kernel void covariance(__global float* data, __global float* mean,
                                              __global float* cov, int k) {
                int i = get_global_id(0);
                int n = get_global_size(0);
                float acc = 0.0f;
                for (int j = 0; j < k; j++) {
                    float d = data[i * k + j] - mean[j % k];
                    acc += d * d;
                }
                cov[i] = acc / (float)(n - 1);
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx * K, rng), fbuf(K, rng), fzero(nx), KernelArg::Int(K as i64)]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "gramschmidt",
            source: "__kernel void gramschmidt(__global float* a, __global float* r,
                                               __global float* q, int k) {
                int i = get_global_id(0);
                float norm = 0.0f;
                for (int j = 0; j < k; j++) {
                    norm += a[i * k + j] * a[i * k + j];
                }
                float rval = sqrt(norm);
                r[i] = rval;
                for (int j = 0; j < k; j++) {
                    q[i * k + j] = a[i * k + j] / (rval + 0.0001f);
                }
            }",
            base_global: (1024, 1),
            build_args: |nx, _ny, rng| {
                vec![fbuf(nx * K, rng), fzero(nx), fzero(nx * K), KernelArg::Int(K as i64)]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "fdtd2d",
            source: "__kernel void fdtd2d(__global float* ex, __global float* ey,
                                          __global float* hz, int w, int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                if (x < w - 1 && y < h - 1) {
                    hz[i] = hz[i] - 0.7f * (ex[i + 1] - ex[i] + ey[i + w] - ey[i]);
                }
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny + nx, rng),
                    fbuf(nx * ny + nx, rng),
                    fbuf(nx * ny, rng),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                ]
            },
        },
        KernelSpec {
            suite: Suite::PolyBench,
            benchmark: "polybench",
            kernel: "jacobi2d",
            source: "__kernel void jacobi2d(__global float* a, __global float* b, int w,
                                            int h) {
                int x = get_global_id(0);
                int y = get_global_id(1);
                int i = y * w + x;
                if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
                    b[i] = 0.2f * (a[i] + a[i - 1] + a[i + 1] + a[i - w] + a[i + w]);
                }
            }",
            base_global: (32, 32),
            build_args: |nx, ny, rng| {
                vec![
                    fbuf(nx * ny, rng),
                    fzero(nx * ny),
                    KernelArg::Int(nx as i64),
                    KernelArg::Int(ny as i64),
                ]
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_15_kernels() {
        assert_eq!(all().len(), 15);
    }

    #[test]
    fn all_sources_compile_lower_and_run() {
        use flexcl_interp::{run, NdRange, RunOptions};
        for spec in all() {
            let program = flexcl_frontend::parse_and_check(spec.source)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
            let func = flexcl_ir::lower_kernel(
                program.kernel(spec.kernel).expect("kernel"),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
            assert_eq!(func.validate(), Ok(()), "{}", spec.full_name());
            let w = spec.workload(crate::Scale::Test, 7);
            let mut args = w.args.clone();
            let local = if w.global.1 > 1 { [8, 8, 1] } else { [64, 1, 1] };
            let nd = NdRange { global: [w.global.0, w.global.1, 1], local };
            run(&func, &mut args, nd, RunOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", spec.full_name()));
        }
    }

    #[test]
    fn polybench_kernels_have_no_barriers() {
        for spec in all() {
            let program = flexcl_frontend::parse_and_check(spec.source).expect("frontend");
            let func = flexcl_ir::lower_kernel(
                program.kernel(spec.kernel).expect("kernel"),
            )
            .expect("lowering");
            assert!(!func.has_barrier(), "{}", spec.full_name());
        }
    }
}
