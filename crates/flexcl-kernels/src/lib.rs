//! # flexcl-kernels
//!
//! The benchmark corpus of the FlexCL evaluation (DAC'17 reproduction):
//! the 45 Rodinia kernels of Table 2 and 15 PolyBench kernels, written in
//! the OpenCL C subset the `flexcl-frontend` accepts, plus deterministic
//! input generators.
//!
//! Fidelity note: each kernel reproduces its benchmark's *computational
//! idiom* — the memory access patterns, loop structure, local-memory and
//! math-function mix that drive the performance model — at workload sizes
//! that simulate quickly. They are not line-for-line copies of the Rodinia
//! sources (which depend on helper functions and host-side staging outside
//! the subset), and the experiments do not require them to be: model
//! accuracy is always measured against the System Run of the *same*
//! kernel.
//!
//! ```
//! let corpus = flexcl_kernels::rodinia();
//! assert_eq!(corpus.len(), 45);
//! for spec in &corpus {
//!     let program = flexcl_frontend::parse_and_check(spec.source).expect(spec.kernel);
//!     assert!(program.kernel(spec.kernel).is_some());
//! }
//! ```

#![warn(missing_docs)]

pub mod polybench;
pub mod rodinia;

use flexcl_core::Workload;
use flexcl_interp::KernelArg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which suite a kernel belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Rodinia heterogeneous-computing suite (Table 2).
    Rodinia,
    /// PolyBench linear-algebra/stencil suite (§4.2).
    PolyBench,
}

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Small inputs for unit/integration tests.
    #[default]
    Test,
    /// Evaluation-sized inputs for the experiment harness.
    Eval,
}

/// One benchmark kernel with its workload generator.
pub struct KernelSpec {
    /// Suite.
    pub suite: Suite,
    /// Benchmark name (Table 2 first column).
    pub benchmark: &'static str,
    /// Kernel name (Table 2 second column).
    pub kernel: &'static str,
    /// OpenCL source.
    pub source: &'static str,
    /// Global NDRange at `Scale::Test`; `Eval` multiplies x (and y if 2-D)
    /// by 4 (2 per dimension for 2-D kernels).
    pub base_global: (u64, u64),
    /// Builds the argument list for a given global size.
    pub build_args: fn(nx: u64, ny: u64, rng: &mut StdRng) -> Vec<KernelArg>,
}

impl std::fmt::Debug for KernelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KernelSpec({}/{})", self.benchmark, self.kernel)
    }
}

impl KernelSpec {
    /// Builds the workload at the given scale (deterministic per seed).
    pub fn workload(&self, scale: Scale, seed: u64) -> Workload {
        let (mut nx, mut ny) = self.base_global;
        if scale == Scale::Eval {
            if ny > 1 {
                nx *= 2;
                ny *= 2;
            } else {
                nx *= 4;
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        Workload { args: (self.build_args)(nx, ny, &mut rng), global: (nx, ny) }
    }

    /// Fully-qualified name, e.g. `srad/reduce`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.benchmark, self.kernel)
    }
}

/// All 45 Rodinia kernels (Table 2 order).
pub fn rodinia() -> Vec<KernelSpec> {
    rodinia::all()
}

/// The 15 PolyBench kernels.
pub fn polybench() -> Vec<KernelSpec> {
    polybench::all()
}

/// The whole corpus.
pub fn all() -> Vec<KernelSpec> {
    let mut v = rodinia();
    v.extend(polybench());
    v
}

// ---------------------------------------------------------------- helpers

/// Random float buffer in [0.25, 1.75] (keeps transcendentals finite).
pub(crate) fn fbuf(len: u64, rng: &mut StdRng) -> KernelArg {
    KernelArg::FloatBuf((0..len).map(|_| rng.gen_range(0.25..1.75)).collect())
}

/// Zeroed float buffer.
pub(crate) fn fzero(len: u64) -> KernelArg {
    KernelArg::FloatBuf(vec![0.0; len as usize])
}

/// Random int buffer in `[0, modulo)`.
pub(crate) fn ibuf_mod(len: u64, modulo: i64, rng: &mut StdRng) -> KernelArg {
    KernelArg::IntBuf((0..len).map(|_| rng.gen_range(0..modulo.max(1))).collect())
}

/// Zeroed int buffer.
pub(crate) fn izero(len: u64) -> KernelArg {
    KernelArg::IntBuf(vec![0; len as usize])
}

/// Int buffer of ones with probability `p`, zeros otherwise.
pub(crate) fn iflags(len: u64, p: f64, rng: &mut StdRng) -> KernelArg {
    KernelArg::IntBuf((0..len).map(|_| i64::from(rng.gen_bool(p))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_counts_match_the_paper() {
        assert_eq!(rodinia().len(), 45, "Table 2 lists 45 Rodinia kernels");
        assert_eq!(polybench().len(), 15);
        assert_eq!(all().len(), 60);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().iter().map(KernelSpec::full_name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let spec = &rodinia()[0];
        let a = spec.workload(Scale::Test, 1);
        let b = spec.workload(Scale::Test, 1);
        assert_eq!(a.args, b.args);
        assert_eq!(a.global, b.global);
    }

    #[test]
    fn eval_scale_is_larger() {
        for spec in all() {
            let t = spec.workload(Scale::Test, 0);
            let e = spec.workload(Scale::Eval, 0);
            assert!(e.total_work_items() > t.total_work_items(), "{}", spec.full_name());
        }
    }
}
