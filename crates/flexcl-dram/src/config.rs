//! DRAM geometry, timing parameters and address mapping.
//!
//! The evaluation platform of the paper is an ADM-PCIE-7V3 board with 16 GB
//! DDR3 memory, 8 banks and a 1 KB row buffer, driven from a 200 MHz kernel
//! clock. Data are arranged across banks in an interleaved manner to reduce
//! bank conflicts (§3.4). All latencies here are expressed in *kernel clock
//! cycles* (200 MHz), i.e. DDR3-1600 timings divided by four.

/// DRAM timing parameters, in kernel-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramTiming {
    /// Row-to-column delay (ACT → READ/WRITE).
    pub t_rcd: u32,
    /// Row precharge time (PRE → ACT).
    pub t_rp: u32,
    /// Read column access latency (CAS).
    pub t_cas: u32,
    /// Write column latency (CWL).
    pub t_cwl: u32,
    /// Write recovery time before precharge.
    pub t_wr: u32,
    /// Write-to-read bus turnaround.
    pub t_wtr: u32,
    /// Read-to-write bus turnaround.
    pub t_rtw: u32,
    /// Data burst transfer time.
    pub t_burst: u32,
}

impl DramTiming {
    /// DDR3-1600 timings (11-11-11) expressed in 200 MHz kernel cycles.
    pub fn ddr3_1600() -> Self {
        DramTiming {
            t_rcd: 4,
            t_rp: 4,
            t_cas: 4,
            t_cwl: 3,
            t_wr: 4,
            t_wtr: 2,
            t_rtw: 2,
            t_burst: 1,
        }
    }

    /// DDR4-2400-class timings for the KU060 robustness platform,
    /// in 200 MHz kernel cycles.
    pub fn ddr4_2400() -> Self {
        DramTiming {
            t_rcd: 3,
            t_rp: 3,
            t_cas: 3,
            t_cwl: 3,
            t_wr: 4,
            t_wtr: 2,
            t_rtw: 2,
            t_burst: 1,
        }
    }
}

/// DRAM organisation and address mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Number of banks.
    pub num_banks: u32,
    /// Row-buffer size per bank, in bytes.
    pub row_bytes: u64,
    /// Interleaving granularity: consecutive chunks of this many bytes map
    /// to consecutive banks. Matches the 512-bit global memory access unit
    /// of SDAccel.
    pub interleave_bytes: u64,
    /// Timing parameters.
    pub timing: DramTiming,
}

impl DramConfig {
    /// The paper's evaluation memory: DDR3, 8 banks, 1 KB row buffer.
    pub fn adm_pcie_7v3() -> Self {
        DramConfig {
            num_banks: 8,
            row_bytes: 1024,
            interleave_bytes: 64,
            timing: DramTiming::ddr3_1600(),
        }
    }

    /// The robustness platform: KU060 board with DDR4-class memory.
    pub fn nas_120a_ku060() -> Self {
        DramConfig {
            num_banks: 16,
            row_bytes: 1024,
            interleave_bytes: 64,
            timing: DramTiming::ddr4_2400(),
        }
    }

    /// Maps a byte address to `(bank, row)`.
    pub fn map(&self, byte_addr: u64) -> (u32, u64) {
        let chunk = byte_addr / self.interleave_bytes;
        let bank = (chunk % u64::from(self.num_banks)) as u32;
        let bank_chunk = chunk / u64::from(self.num_banks);
        let row = bank_chunk * self.interleave_bytes / self.row_bytes;
        (bank, row)
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::adm_pcie_7v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_chunks_hit_different_banks() {
        let c = DramConfig::adm_pcie_7v3();
        let banks: Vec<u32> = (0..8).map(|i| c.map(i * c.interleave_bytes).0).collect();
        assert_eq!(banks, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn same_chunk_same_bank() {
        let c = DramConfig::adm_pcie_7v3();
        assert_eq!(c.map(0), c.map(63));
        assert_ne!(c.map(0).0, c.map(64).0);
    }

    #[test]
    fn row_changes_after_row_bytes_per_bank() {
        let c = DramConfig::adm_pcie_7v3();
        // Bank 0 receives chunks 0, 8, 16, ... Each row holds
        // row_bytes / interleave_bytes = 16 chunks.
        let (b0, r0) = c.map(0);
        let (b1, r1) = c.map(15 * 8 * 64); // 16th chunk of bank 0
        let (b2, r2) = c.map(16 * 8 * 64); // 17th chunk of bank 0
        assert_eq!(b0, 0);
        assert_eq!(b1, 0);
        assert_eq!(b2, 0);
        assert_eq!(r0, r1);
        assert_eq!(r2, r0 + 1);
    }

    #[test]
    fn platform_presets_differ() {
        assert_ne!(DramConfig::adm_pcie_7v3(), DramConfig::nas_120a_ku060());
        assert_eq!(DramConfig::default(), DramConfig::adm_pcie_7v3());
    }
}
