//! A behavioural DRAM simulator.
//!
//! Given a stream of timed requests the simulator tracks each bank's open
//! row and last access kind, classifies every request into one of the
//! eight Table-1 patterns, and accounts its latency. Banks operate in
//! parallel; requests to a busy bank queue behind it. This is the memory
//! backend of the "System Run" simulator and also the measurement target
//! of the micro-benchmark profiler.

use crate::config::DramConfig;
use crate::pattern::{analytic_latencies, AccessKind, Pattern, PatternTable};

/// A memory request presented to the DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Byte address.
    pub addr: u64,
    /// Bytes transferred.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Cycle at which the request arrives at the controller.
    pub arrival: u64,
}

/// Result of servicing one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceInfo {
    /// The pattern the request was classified as.
    pub pattern: Pattern,
    /// Cycle at which service began.
    pub start: u64,
    /// Cycle at which the data transfer completed.
    pub finish: u64,
}

/// Per-bank state.
#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    last_kind: AccessKind,
    free_at: u64,
}

/// The DRAM simulator.
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    latencies: PatternTable<f64>,
    banks: Vec<BankState>,
    counts: PatternTable<u64>,
    busy_cycles: u64,
    last_finish: u64,
}

impl DramSim {
    /// Creates a simulator with analytic per-pattern latencies derived from
    /// the configuration's timing parameters.
    pub fn new(config: DramConfig) -> Self {
        let latencies = analytic_latencies(&config.timing);
        DramSim {
            banks: vec![
                BankState { open_row: None, last_kind: AccessKind::Read, free_at: 0 };
                config.num_banks as usize
            ],
            config,
            latencies,
            counts: PatternTable::new(),
            busy_cycles: 0,
            last_finish: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Services one request, returning its classification and timing.
    pub fn access(&mut self, req: Request) -> ServiceInfo {
        let (bank_idx, row) = self.config.map(req.addr);
        let bank = &mut self.banks[bank_idx as usize];
        let hit = bank.open_row == Some(row);
        let pattern = Pattern { now: req.kind, prev: bank.last_kind, hit };
        let latency = self.latencies[pattern].round() as u64;
        // Multi-chunk transfers stream additional bursts.
        let extra_bursts =
            (u64::from(req.bytes).saturating_sub(1)) / self.config.interleave_bytes;
        let total = latency + extra_bursts * u64::from(self.config.timing.t_burst);

        let start = req.arrival.max(bank.free_at);
        let finish = start + total;
        bank.open_row = Some(row);
        bank.last_kind = req.kind;
        bank.free_at = finish;

        self.counts[pattern] += 1;
        self.busy_cycles += total;
        self.last_finish = self.last_finish.max(finish);
        ServiceInfo { pattern, start, finish }
    }

    /// Services a whole trace (arrival order preserved) and returns the
    /// cycle at which the last request finished.
    pub fn run_trace(&mut self, trace: impl IntoIterator<Item = Request>) -> u64 {
        let mut last = 0;
        for req in trace {
            last = last.max(self.access(req).finish);
        }
        last
    }

    /// Per-pattern request counts accumulated so far.
    pub fn counts(&self) -> &PatternTable<u64> {
        &self.counts
    }

    /// Per-pattern latencies used by this simulator.
    pub fn latencies(&self) -> &PatternTable<f64> {
        &self.latencies
    }

    /// Sum of service latencies (no overlap discount).
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Completion time of the latest request serviced.
    pub fn last_finish(&self) -> u64 {
        self.last_finish
    }

    /// Resets bank state and counters.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = BankState { open_row: None, last_kind: AccessKind::Read, free_at: 0 };
        }
        self.counts = PatternTable::new();
        self.busy_cycles = 0;
        self.last_finish = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_at(addr: u64, arrival: u64) -> Request {
        Request { addr, bytes: 4, kind: AccessKind::Read, arrival }
    }

    #[test]
    fn sequential_reads_same_row_hit() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        sim.access(read_at(0, 0));
        let info = sim.access(read_at(4, 10));
        assert!(info.pattern.hit, "second read to same chunk must hit");
        assert_eq!(info.pattern.now, AccessKind::Read);
    }

    #[test]
    fn first_access_to_bank_is_miss() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        let info = sim.access(read_at(0, 0));
        assert!(!info.pattern.hit);
    }

    #[test]
    fn row_conflict_misses() {
        let cfg = DramConfig::adm_pcie_7v3();
        let mut sim = DramSim::new(cfg);
        // Two addresses in the same bank but different rows:
        // bank stride is interleave*banks = 512B; row holds 16 chunks of
        // bank-local data → +512*16 = 8192 bytes later, same bank, next row.
        sim.access(read_at(0, 0));
        let info = sim.access(read_at(8192, 100));
        let (b0, r0) = cfg.map(0);
        let (b1, r1) = cfg.map(8192);
        assert_eq!(b0, b1);
        assert_ne!(r0, r1);
        assert!(!info.pattern.hit);
    }

    #[test]
    fn banks_service_in_parallel() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        // Requests to different banks at the same arrival time overlap.
        let f1 = sim.access(read_at(0, 0)).finish;
        let f2 = sim.access(read_at(64, 0)).finish;
        assert_eq!(f1, f2, "different banks start simultaneously");
    }

    #[test]
    fn same_bank_requests_queue() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        let a = sim.access(read_at(0, 0));
        let b = sim.access(read_at(4, 0));
        assert_eq!(b.start, a.finish, "same-bank request waits");
    }

    #[test]
    fn write_read_alternation_classified() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        sim.access(Request { addr: 0, bytes: 4, kind: AccessKind::Write, arrival: 0 });
        let info = sim.access(read_at(4, 50));
        assert_eq!(info.pattern.prev, AccessKind::Write);
        assert_eq!(info.pattern.now, AccessKind::Read);
        assert!(info.pattern.hit);
    }

    #[test]
    fn counts_accumulate() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        for i in 0..10 {
            sim.access(read_at(i * 4, i * 20));
        }
        let total: u64 = sim.counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 10);
        sim.reset();
        let total: u64 = sim.counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn waw_sequence_classifies() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        sim.access(Request { addr: 0, bytes: 4, kind: AccessKind::Write, arrival: 0 });
        let info = sim.access(Request { addr: 8, bytes: 4, kind: AccessKind::Write, arrival: 50 });
        assert_eq!(info.pattern.now, AccessKind::Write);
        assert_eq!(info.pattern.prev, AccessKind::Write);
        assert!(info.pattern.hit);
    }

    #[test]
    fn alternating_rw_pays_turnaround() {
        // R,W,R,W on the same row: every access after the first changes
        // direction, so each is slower than steady-state same-kind hits.
        let cfg = DramConfig::adm_pcie_7v3();
        let mut alt = DramSim::new(cfg);
        let mut t = 0;
        let mut alt_total = 0u64;
        for i in 0..8 {
            let kind = if i % 2 == 0 { AccessKind::Read } else { AccessKind::Write };
            let info = alt.access(Request { addr: 0, bytes: 4, kind, arrival: t });
            if i > 0 { alt_total += info.finish - info.start; }
            t = info.finish + 1;
        }
        let mut same = DramSim::new(cfg);
        let mut t = 0;
        let mut same_total = 0u64;
        for i in 0..8 {
            let info = same.access(Request { addr: 0, bytes: 4, kind: AccessKind::Read, arrival: t });
            if i > 0 { same_total += info.finish - info.start; }
            t = info.finish + 1;
        }
        assert!(alt_total > same_total, "turnaround: {alt_total} vs {same_total}");
    }

    #[test]
    fn large_burst_takes_longer() {
        let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
        let small = sim.access(read_at(0, 0));
        sim.reset();
        let big = sim.access(Request { addr: 0, bytes: 512, kind: AccessKind::Read, arrival: 0 });
        assert!(big.finish - big.start > small.finish - small.start);
    }
}
