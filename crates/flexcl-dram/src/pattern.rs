//! The eight global-memory access patterns of Table 1.
//!
//! Each access is classified by (a) whether it is a read or write, (b) the
//! kind of the *previous access to the same bank*, and (c) whether it hits
//! the bank's open row buffer. A row-buffer hit needs a single DRAM
//! command; a miss needs three (PRE, ACT, then the column command).

use crate::config::DramTiming;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Access kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

/// One of the eight patterns of Table 1, e.g. "read (hit) access after write".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pattern {
    /// The current access.
    pub now: AccessKind,
    /// The previous access to the same bank.
    pub prev: AccessKind,
    /// Whether the open row matched.
    pub hit: bool,
}

impl Pattern {
    /// All eight patterns in Table 1 order.
    pub fn all() -> [Pattern; 8] {
        use AccessKind::*;
        [
            Pattern { now: Read, prev: Read, hit: true },
            Pattern { now: Read, prev: Write, hit: true },
            Pattern { now: Write, prev: Read, hit: true },
            Pattern { now: Write, prev: Write, hit: true },
            Pattern { now: Read, prev: Read, hit: false },
            Pattern { now: Read, prev: Write, hit: false },
            Pattern { now: Write, prev: Read, hit: false },
            Pattern { now: Write, prev: Write, hit: false },
        ]
    }

    /// Table-1 style name, e.g. `RAW_hit` for a read (hit) after write.
    pub fn name(&self) -> String {
        let first = match self.now {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        let last = match self.prev {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        format!("{first}A{last}_{}", if self.hit { "hit" } else { "miss" })
    }

    /// Dense index 0..8 used by [`PatternTable`].
    pub fn index(&self) -> usize {
        let a = usize::from(self.now == AccessKind::Write);
        let b = usize::from(self.prev == AccessKind::Write);
        let c = usize::from(!self.hit);
        c * 4 + a * 2 + b
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A value per pattern — latencies (`ΔT`) or counts (`N`) of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PatternTable<T> {
    values: [T; 8],
}

impl<T: Copy + Default> PatternTable<T> {
    /// A table with all entries `T::default()`.
    pub fn new() -> Self {
        PatternTable { values: [T::default(); 8] }
    }

    /// Iterates `(pattern, value)` pairs in Table 1 order.
    pub fn iter(&self) -> impl Iterator<Item = (Pattern, T)> + '_ {
        Pattern::all().into_iter().map(|p| (p, self.values[p.index()]))
    }
}

impl<T> Index<Pattern> for PatternTable<T> {
    type Output = T;

    fn index(&self, p: Pattern) -> &T {
        &self.values[p.index()]
    }
}

impl<T> IndexMut<Pattern> for PatternTable<T> {
    fn index_mut(&mut self, p: Pattern) -> &mut T {
        &mut self.values[p.index()]
    }
}

/// Analytic per-pattern latencies derived from the timing parameters.
///
/// Hits issue one column command; misses pay write-recovery (if the
/// previous access was a write), precharge and activate first. Bus
/// turnaround penalties apply when the access kind changes.
pub fn analytic_latencies(t: &DramTiming) -> PatternTable<f64> {
    let mut out = PatternTable::new();
    for p in Pattern::all() {
        let col = match p.now {
            AccessKind::Read => t.t_cas,
            AccessKind::Write => t.t_cwl,
        };
        let turnaround = match (p.prev, p.now) {
            (AccessKind::Write, AccessKind::Read) => t.t_wtr,
            (AccessKind::Read, AccessKind::Write) => t.t_rtw,
            _ => 0,
        };
        let miss = if p.hit {
            0
        } else {
            let recovery = if p.prev == AccessKind::Write { t.t_wr } else { 0 };
            recovery + t.t_rp + t.t_rcd
        };
        out[p] = f64::from(col + turnaround + miss + t.t_burst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_distinct_patterns() {
        let all = Pattern::all();
        let mut idx: Vec<usize> = all.iter().map(Pattern::index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn names_match_table1() {
        use AccessKind::*;
        assert_eq!(Pattern { now: Read, prev: Read, hit: true }.name(), "RAR_hit");
        assert_eq!(Pattern { now: Write, prev: Read, hit: false }.name(), "WAR_miss");
        assert_eq!(Pattern { now: Read, prev: Write, hit: true }.name(), "RAW_hit");
    }

    #[test]
    fn misses_cost_more_than_hits() {
        let lat = analytic_latencies(&DramTiming::ddr3_1600());
        for p in Pattern::all().into_iter().filter(|p| p.hit) {
            let miss = Pattern { hit: false, ..p };
            assert!(lat[miss] > lat[p], "{miss} must exceed {p}");
        }
    }

    #[test]
    fn turnaround_penalises_kind_changes() {
        use AccessKind::*;
        let lat = analytic_latencies(&DramTiming::ddr3_1600());
        let rar = Pattern { now: Read, prev: Read, hit: true };
        let raw = Pattern { now: Read, prev: Write, hit: true };
        assert!(lat[raw] > lat[rar], "read after write pays bus turnaround");
    }

    #[test]
    fn table_indexing() {
        let mut t: PatternTable<u64> = PatternTable::new();
        let p = Pattern { now: AccessKind::Write, prev: AccessKind::Write, hit: false };
        t[p] = 42;
        assert_eq!(t[p], 42);
        assert_eq!(t.iter().filter(|(_, v)| *v == 42).count(), 1);
    }
}
