//! # flexcl-dram
//!
//! Banked DRAM model for FlexCL (DAC'17 reproduction, §3.4).
//!
//! The paper models off-chip global memory as a multi-bank DRAM with
//! per-bank row buffers and byte-interleaved data mapping, classifies each
//! access into one of eight patterns ({read,write} after {read,write} ×
//! {row-buffer hit, miss}, Table 1), and obtains each pattern's latency
//! `ΔT` through micro-benchmark profiling. SDAccel-style access coalescing
//! reduces the transaction count by `f = unit_size / dtype_width`.
//!
//! This crate provides all four pieces:
//!
//! * [`config`] — geometry, DDR3/DDR4 timing presets, address mapping;
//! * [`pattern`] — the Table-1 pattern taxonomy and analytic latencies;
//! * [`sim`] — a behavioural simulator (bank queues, open rows) used as the
//!   memory backend of the System Run simulator;
//! * [`mod@coalesce`] — burst coalescing;
//! * [`microbench`] — the profiling flow that recovers the `ΔT` table.
//!
//! ```
//! use flexcl_dram::{DramConfig, microbench};
//!
//! let delta_t = microbench::profile(DramConfig::adm_pcie_7v3());
//! for (pattern, latency) in delta_t.iter() {
//!     assert!(latency > 0.0, "{pattern} must have a measured latency");
//! }
//! ```

#![warn(missing_docs)]

pub mod coalesce;
pub mod config;
pub mod microbench;
pub mod pattern;
pub mod sim;

pub use coalesce::{coalesce, coalescing_degree, Burst, ElementAccess};
pub use config::{DramConfig, DramTiming};
pub use pattern::{analytic_latencies, AccessKind, Pattern, PatternTable};
pub use sim::{DramSim, Request, ServiceInfo};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Address mapping is total and stable: same address, same (bank, row).
        #[test]
        fn mapping_is_deterministic(addr in 0u64..1 << 34) {
            let c = DramConfig::adm_pcie_7v3();
            prop_assert_eq!(c.map(addr), c.map(addr));
            let (bank, _row) = c.map(addr);
            prop_assert!(bank < c.num_banks);
        }

        /// Coalescing never increases the number of transactions and
        /// conserves total bytes.
        #[test]
        fn coalescing_conserves_bytes(
            n in 1usize..200,
            stride in prop::sample::select(vec![4u64, 8, 16, 64, 128]),
        ) {
            let accesses: Vec<ElementAccess> = (0..n as u64)
                .map(|i| ElementAccess { addr: i * stride, bytes: 4, kind: AccessKind::Read })
                .collect();
            let bursts = coalesce(&accesses, 64);
            prop_assert!(bursts.len() <= accesses.len());
            let in_bytes: u64 = accesses.iter().map(|a| u64::from(a.bytes)).sum();
            let out_bytes: u64 = bursts.iter().map(|b| u64::from(b.bytes)).sum();
            prop_assert_eq!(in_bytes, out_bytes);
            let merged: u32 = bursts.iter().map(|b| b.merged).sum();
            prop_assert_eq!(merged as usize, accesses.len());
        }

        /// The simulator finishes every trace, bank indices stay in range,
        /// and time is monotone per bank.
        #[test]
        fn simulator_time_is_monotone(
            addrs in prop::collection::vec(0u64..(1 << 20), 1..100),
        ) {
            let mut sim = DramSim::new(DramConfig::adm_pcie_7v3());
            let mut t = 0;
            let mut last_finish = 0;
            for (i, a) in addrs.iter().enumerate() {
                let kind = if i % 3 == 0 { AccessKind::Write } else { AccessKind::Read };
                let info = sim.access(Request { addr: *a, bytes: 4, kind, arrival: t });
                prop_assert!(info.finish > info.start);
                prop_assert!(info.start >= t);
                last_finish = last_finish.max(info.finish);
                t += 2;
            }
            prop_assert_eq!(sim.last_finish(), last_finish);
        }
    }
}
