//! Global-memory access coalescing.
//!
//! SDAccel automatically merges consecutive reads (or writes) into wide
//! bursts of the memory access unit size (512 bit). The number of memory
//! transactions drops by the coalescing degree
//! `f = MemoryAccessUnitSize / DataTypeBitWidth` (§3.4): 1024 consecutive
//! 32-bit reads against a 512-bit unit become 1024 / 16 = 64 accesses.

use crate::pattern::AccessKind;

/// An uncoalesced element access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementAccess {
    /// Byte address of the element.
    pub addr: u64,
    /// Element size in bytes.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
}

/// A coalesced memory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Burst {
    /// Byte address of the first element.
    pub addr: u64,
    /// Total bytes covered.
    pub bytes: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// How many element accesses were merged.
    pub merged: u32,
}

/// Coalesces a stream of element accesses into bursts of at most
/// `unit_bytes`.
///
/// Elements merge into the current burst while they have the same kind,
/// are exactly contiguous with it, and the burst stays within one unit.
pub fn coalesce(accesses: &[ElementAccess], unit_bytes: u32) -> Vec<Burst> {
    let mut out: Vec<Burst> = Vec::new();
    for a in accesses {
        if let Some(cur) = out.last_mut() {
            let contiguous = cur.addr + u64::from(cur.bytes) == a.addr;
            let same_kind = cur.kind == a.kind;
            let fits = cur.bytes + a.bytes <= unit_bytes;
            // A burst may not straddle a unit boundary (hardware alignment).
            let same_unit = (cur.addr / u64::from(unit_bytes))
                == (a.addr + u64::from(a.bytes) - 1) / u64::from(unit_bytes);
            if contiguous && same_kind && fits && same_unit {
                cur.bytes += a.bytes;
                cur.merged += 1;
                continue;
            }
        }
        out.push(Burst { addr: a.addr, bytes: a.bytes, kind: a.kind, merged: 1 });
    }
    out
}

/// The ideal coalescing degree `f` for perfectly consecutive accesses.
pub fn coalescing_degree(unit_bits: u32, dtype_bits: u32) -> u32 {
    (unit_bits / dtype_bits.max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reads(n: u64, stride: u64, bytes: u32) -> Vec<ElementAccess> {
        (0..n)
            .map(|i| ElementAccess { addr: i * stride, bytes, kind: AccessKind::Read })
            .collect()
    }

    #[test]
    fn paper_example_1024_ints_become_64_bursts() {
        // 1024 consecutive 32-bit reads, 512-bit unit → 64 transactions.
        let accesses = reads(1024, 4, 4);
        let bursts = coalesce(&accesses, 64);
        assert_eq!(bursts.len(), 64);
        assert!(bursts.iter().all(|b| b.merged == 16 && b.bytes == 64));
        assert_eq!(coalescing_degree(512, 32), 16);
    }

    #[test]
    fn strided_accesses_do_not_coalesce() {
        let accesses = reads(16, 128, 4);
        let bursts = coalesce(&accesses, 64);
        assert_eq!(bursts.len(), 16);
        assert!(bursts.iter().all(|b| b.merged == 1));
    }

    #[test]
    fn kind_change_breaks_burst() {
        let mut accesses = reads(4, 4, 4);
        accesses.insert(2, ElementAccess { addr: 8, bytes: 4, kind: AccessKind::Write });
        let bursts = coalesce(&accesses, 64);
        assert!(bursts.len() >= 3);
    }

    #[test]
    fn unit_boundary_breaks_burst() {
        // 32 consecutive 4-byte reads with a 64-byte unit: exactly 2 bursts.
        let accesses = reads(32, 4, 4);
        let bursts = coalesce(&accesses, 64);
        assert_eq!(bursts.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[], 64).is_empty());
    }

    #[test]
    fn degree_is_at_least_one() {
        assert_eq!(coalescing_degree(512, 512), 1);
        assert_eq!(coalescing_degree(512, 1024), 1);
        assert_eq!(coalescing_degree(512, 64), 8);
    }
}
