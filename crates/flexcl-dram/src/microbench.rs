//! Micro-benchmark profiling of per-pattern latencies.
//!
//! FlexCL obtains the `ΔT` column of Table 1 "through micro-benchmark
//! profiling" (§3.4). This module reproduces that flow against the DRAM
//! simulator: for each of the eight patterns it constructs a synthetic
//! request stream in which the accesses of interest are guaranteed to be
//! classified as that pattern, services the stream, and averages the
//! measured latencies.

use crate::config::DramConfig;
use crate::pattern::{Pattern, PatternTable};
use crate::sim::{DramSim, Request};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// Number of measured accesses per pattern.
const SAMPLES: u64 = 256;

/// Process-wide memoization of [`profile`] results, keyed by the full DRAM
/// configuration. Profiling is deterministic per configuration, so the
/// first caller fills the entry and everyone else (including concurrent
/// DSE workers) reads the cached table.
static PROFILE_CACHE: OnceLock<Mutex<HashMap<DramConfig, PatternTable<f64>>>> = OnceLock::new();

/// Memoized [`profile`]: each distinct `DramConfig` is micro-benchmarked
/// once per process. A design-space sweep analyzes one kernel per
/// work-group size against the same platform, so this turns five identical
/// 2k-request profiling runs into one.
pub fn profile_cached(config: DramConfig) -> PatternTable<f64> {
    let cache = PROFILE_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(table) = cache.lock().expect("profile cache poisoned").get(&config) {
        return *table;
    }
    // Profile outside the lock: concurrent first callers may race, but the
    // result is deterministic so double work is the only cost.
    let table = profile(config);
    *cache
        .lock()
        .expect("profile cache poisoned")
        .entry(config)
        .or_insert(table)
}

/// Profiles all eight pattern latencies on `config`, returning the measured
/// `ΔT` table (in kernel cycles).
pub fn profile(config: DramConfig) -> PatternTable<f64> {
    let mut out = PatternTable::new();
    for p in Pattern::all() {
        out[p] = profile_pattern(config, p);
    }
    out
}

/// Measures the average latency of accesses classified as `target`.
pub fn profile_pattern(config: DramConfig, target: Pattern) -> f64 {
    let mut sim = DramSim::new(config);
    let bank_stride = config.interleave_bytes * u64::from(config.num_banks);
    // Two different rows of bank 0.
    let chunks_per_row = config.row_bytes / config.interleave_bytes;
    let row_a = 0u64;
    let row_b = chunks_per_row * bank_stride;

    let mut time = 0u64;
    let mut total = 0f64;
    let mut measured = 0u64;
    let mut toggle = false;

    // Prime the bank so the very first measured access sees `prev` state.
    let prime_kind = target.prev;
    sim.access(Request { addr: row_a, bytes: 4, kind: prime_kind, arrival: time });
    time += 200;

    for _ in 0..SAMPLES {
        // Arrange the row-buffer state.
        let addr = if target.hit {
            row_a
        } else {
            // Alternate rows so each access misses.
            toggle = !toggle;
            if toggle {
                row_b
            } else {
                row_a
            }
        };
        let info = sim.access(Request { addr, bytes: 4, kind: target.now, arrival: time });
        if info.pattern == target {
            total += (info.finish - info.start) as f64;
            measured += 1;
        }
        time = info.finish + 50;
        // Restore `prev` kind for the next sample when it differs.
        if target.now != target.prev {
            let fix = sim.access(Request {
                addr: if target.hit { row_a } else { addr },
                bytes: 4,
                kind: target.prev,
                arrival: time,
            });
            time = fix.finish + 50;
        }
    }
    if measured == 0 {
        return 0.0;
    }
    total / measured as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::analytic_latencies;

    #[test]
    fn every_pattern_is_measurable() {
        let table = profile(DramConfig::adm_pcie_7v3());
        for (p, v) in table.iter() {
            assert!(v > 0.0, "pattern {p} produced no measurement");
        }
    }

    #[test]
    fn profiled_matches_analytic_model() {
        // The simulator's service times derive from the analytic table, so
        // profiling must recover it exactly (same-row single-burst accesses).
        let cfg = DramConfig::adm_pcie_7v3();
        let profiled = profile(cfg);
        let analytic = analytic_latencies(&cfg.timing);
        for (p, v) in profiled.iter() {
            assert!(
                (v - analytic[p]).abs() < 1e-9,
                "{p}: profiled {v} vs analytic {}",
                analytic[p]
            );
        }
    }

    #[test]
    fn miss_patterns_slower_than_hit_patterns() {
        let table = profile(DramConfig::adm_pcie_7v3());
        for p in Pattern::all().into_iter().filter(|p| p.hit) {
            let miss = Pattern { hit: false, ..p };
            assert!(table[miss] > table[p]);
        }
    }

    #[test]
    fn cached_profile_matches_direct() {
        for cfg in [DramConfig::adm_pcie_7v3(), DramConfig::nas_120a_ku060()] {
            let direct = profile(cfg);
            let first = profile_cached(cfg);
            let second = profile_cached(cfg);
            for (p, v) in direct.iter() {
                assert_eq!(v, first[p], "{p}");
                assert_eq!(first[p], second[p], "{p}");
            }
        }
    }

    #[test]
    fn ku060_profile_differs_from_v7() {
        let v7 = profile(DramConfig::adm_pcie_7v3());
        let ku = profile(DramConfig::nas_120a_ku060());
        let differs = Pattern::all().iter().any(|p| (v7[*p] - ku[*p]).abs() > 1e-9);
        assert!(differs, "platforms must have distinct pattern tables");
    }
}
